#include "io/journal.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "core/logging.h"
#include "core/strings.h"
#include "io/durable_file.h"
#include "io/error_context.h"

namespace lhmm::io {

namespace {

constexpr char kMagic[8] = {'L', 'H', 'M', 'M', 'W', 'A', 'L', '1'};
constexpr int64_t kHeaderBytes = 16;  ///< 8-byte magic + u64le first_index.
constexpr int64_t kFrameBytes = 8;    ///< u32le length + u32le crc.
/// Records larger than this cannot have been written by us; a length field
/// that claims more is framing corruption, not a big record.
constexpr int64_t kMaxRecordBytes = 16 << 20;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

/// Frames one record (length + crc + payload) onto `out`.
void FrameRecord(std::string* out, const std::string& payload) {
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

std::string SegmentHeader(int64_t first_index) {
  std::string h(kMagic, sizeof(kMagic));
  PutU64(&h, static_cast<uint64_t>(first_index));
  return h;
}

core::Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return core::Status::IoError("cannot open " + path);
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) {
    return core::Status::IoError("cannot read " + path);
  }
  return contents;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord: return "record";
    case FsyncPolicy::kEveryTick: return "tick";
    case FsyncPolicy::kNone: return "none";
  }
  return "unknown";
}

bool ParseFsyncPolicy(const std::string& text, FsyncPolicy* out) {
  if (text == "record") {
    *out = FsyncPolicy::kEveryRecord;
  } else if (text == "tick") {
    *out = FsyncPolicy::kEveryTick;
  } else if (text == "none") {
    *out = FsyncPolicy::kNone;
  } else {
    return false;
  }
  return true;
}

std::string JournalSegmentPath(const std::string& dir, int64_t seq) {
  return core::StrFormat("%s/wal-%08lld.seg", dir.c_str(),
                         static_cast<long long>(seq));
}

core::Result<JournalScan> ScanJournal(const std::string& dir,
                                      bool keep_payloads) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return core::Status::IoError("journal directory " + dir +
                                 " does not exist");
  }

  JournalScan scan;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!core::StartsWith(name, "wal-") || name.size() != 16 ||
        name.substr(12) != ".seg") {
      continue;
    }
    int seq = 0;
    if (!core::ParseInt(name.substr(4, 8), &seq)) continue;
    SegmentInfo info;
    info.path = entry.path().string();
    info.seq = seq;
    scan.segments.push_back(std::move(info));
  }
  if (ec) {
    return core::Status::IoError("cannot list journal directory " + dir);
  }
  std::sort(scan.segments.begin(), scan.segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.seq < b.seq;
            });

  for (size_t i = 0; i < scan.segments.size(); ++i) {
    SegmentInfo& seg = scan.segments[i];
    const bool last = i + 1 == scan.segments.size();
    core::Result<std::string> data = ReadWholeFile(seg.path);
    if (!data.ok()) return data.status();
    seg.file_bytes = static_cast<int64_t>(data->size());

    if (seg.file_bytes < kHeaderBytes) {
      // Not even a full header. On the final segment that is a crash between
      // segment creation and the header write — a clean (empty) end of log.
      if (last) {
        scan.torn_tail = true;
        seg.first_index = scan.next_index;
        break;
      }
      scan.clean = false;
      scan.corruption = OffsetError(
          seg.path, seg.file_bytes,
          seg.file_bytes == 0 ? "empty segment (zero bytes, header missing)"
                              : "truncated segment header");
      break;
    }
    if (std::memcmp(data->data(), kMagic, sizeof(kMagic)) != 0) {
      scan.clean = false;
      scan.corruption = OffsetError(seg.path, 0, "bad segment magic");
      break;
    }
    seg.first_index = static_cast<int64_t>(GetU64(data->data() + 8));
    if (i == 0) {
      // The oldest surviving segment defines where the log starts (earlier
      // segments may have been compacted away).
      scan.next_index = seg.first_index;
    } else if (seg.first_index != scan.next_index) {
      scan.clean = false;
      scan.corruption = OffsetError(
          seg.path, 8,
          core::StrFormat("segment starts at record %lld, expected %lld "
                          "(records are not contiguous)",
                          static_cast<long long>(seg.first_index),
                          static_cast<long long>(scan.next_index)));
      break;
    }
    seg.valid_bytes = kHeaderBytes;

    int64_t off = kHeaderBytes;
    bool stop = false;
    while (off < seg.file_bytes) {
      if (seg.file_bytes - off < kFrameBytes) {
        if (last) {
          scan.torn_tail = true;
        } else {
          scan.clean = false;
          scan.corruption =
              OffsetError(seg.path, off, "truncated record header");
        }
        stop = true;
        break;
      }
      const int64_t len = static_cast<int64_t>(GetU32(data->data() + off));
      const uint32_t want_crc = GetU32(data->data() + off + 4);
      if (len > kMaxRecordBytes) {
        scan.clean = false;
        scan.corruption = OffsetError(
            seg.path, off,
            core::StrFormat("implausible record length %lld",
                            static_cast<long long>(len)));
        stop = true;
        break;
      }
      if (off + kFrameBytes + len > seg.file_bytes) {
        // The record runs past end of file: a torn write if this is the tail
        // of the log, framing corruption anywhere else.
        if (last) {
          scan.torn_tail = true;
        } else {
          scan.clean = false;
          scan.corruption = OffsetError(
              seg.path, off, "record runs past end of a non-final segment");
        }
        stop = true;
        break;
      }
      const char* payload = data->data() + off + kFrameBytes;
      const uint32_t got_crc =
          Crc32(payload, static_cast<size_t>(len));
      if (got_crc != want_crc) {
        // A complete frame whose bytes do not match their checksum is real
        // corruption (bitflip, overlapped write), even at the tail.
        scan.clean = false;
        scan.corruption = OffsetError(
            seg.path, off,
            core::StrFormat("record CRC mismatch (stored %08x, computed %08x)",
                            want_crc, got_crc));
        stop = true;
        break;
      }
      if (keep_payloads) {
        JournalRecord rec;
        rec.index = scan.next_index;
        rec.payload.assign(payload, static_cast<size_t>(len));
        scan.records.push_back(std::move(rec));
      }
      ++seg.record_count;
      ++scan.next_index;
      off += kFrameBytes + len;
      seg.valid_bytes = off;
    }
    if (stop) break;
  }
  return scan;
}

JournalWriter::~JournalWriter() = default;

core::Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& dir, const JournalOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  LHMM_RETURN_IF_ERROR(env->CreateDirs(dir));

  core::Result<JournalScan> scan = ScanJournal(dir, /*keep_payloads=*/false);
  if (!scan.ok()) return scan.status();

  std::unique_ptr<JournalWriter> w(new JournalWriter());
  w->env_ = env;
  w->dir_ = dir;
  w->options_ = options;
  w->next_index_ = scan->next_index;
  w->last_committed_index_ = scan->next_index - 1;

  // Repair: the log must end exactly on a record boundary before appending.
  // A torn tail is truncated away; a corrupt segment is truncated at its
  // last valid record and every later segment (beyond the corruption
  // horizon, unreachable by replay) is deleted.
  bool saw_problem = false;
  for (const SegmentInfo& seg : scan->segments) {
    if (saw_problem) {
      LHMM_RETURN_IF_ERROR(env->Unlink(seg.path));
      continue;
    }
    SegmentInfo live = seg;
    if (seg.valid_bytes < seg.file_bytes || seg.valid_bytes < kHeaderBytes) {
      saw_problem = true;
      if (seg.valid_bytes < kHeaderBytes) {
        // Headerless stub: delete it; a fresh segment takes its place below.
        LHMM_RETURN_IF_ERROR(env->Unlink(seg.path));
        continue;
      }
      LHMM_RETURN_IF_ERROR(w->ShortenTo(seg.path, seg.valid_bytes));
      live.file_bytes = seg.valid_bytes;
    }
    w->segments_.push_back(live);
  }

  if (w->segments_.empty()) {
    const int64_t seq =
        scan->segments.empty() ? 1 : scan->segments.back().seq + 1;
    LHMM_RETURN_IF_ERROR(w->CreateSegment(seq, w->next_index_));
  }
  return w;
}

core::Status JournalWriter::CreateSegment(int64_t seq, int64_t first_index) {
  SegmentInfo seg;
  seg.path = JournalSegmentPath(dir_, seq);
  seg.seq = seq;
  seg.first_index = first_index;
  seg.valid_bytes = kHeaderBytes;
  seg.file_bytes = kHeaderBytes;
  // Truncate-create (not append): a failed earlier attempt may have left a
  // partial header stub at this path, and appending a second header after
  // it would be unrecoverable garbage. Truncating makes the retry
  // idempotent.
  LHMM_RETURN_IF_ERROR(TruncateWriteFile(
      env_, seg.path, SegmentHeader(first_index),
      /*durable=*/options_.fsync != FsyncPolicy::kNone));
  if (options_.fsync != FsyncPolicy::kNone) {
    LHMM_RETURN_IF_ERROR(FsyncParentDir(env_, seg.path));
  }
  segments_.push_back(std::move(seg));
  // A fresh tail is writable again; any seal applied to the previous tail
  // stays with that (now closed) segment.
  tail_sealed_ = false;
  return core::Status::Ok();
}

core::Status JournalWriter::ShortenTo(const std::string& path, int64_t size) {
  core::Status st = env_->Truncate(path, size);
  if (!st.ok()) {
    return core::Status(st.code(),
                        "cannot truncate journal segment " + path + ": " +
                            st.message());
  }
  return core::Status::Ok();
}

core::Result<int64_t> JournalWriter::Append(const std::string& payload) {
  if (wedged_) {
    return core::Status::DataLoss("journal wedged: " + wedge_reason_);
  }
  const int64_t index = next_index_++;
  FrameRecord(&buffer_, payload);
  ++buffered_records_;
  if (options_.fsync == FsyncPolicy::kEveryRecord) {
    LHMM_RETURN_IF_ERROR(Commit());
  }
  return index;
}

core::Status JournalWriter::Commit() {
  if (wedged_) {
    return core::Status::DataLoss("journal wedged: " + wedge_reason_);
  }
  if (buffered_records_ == 0) return core::Status::Ok();
  CHECK(!segments_.empty());
  if (tail_sealed_ || segments_.back().file_bytes >= options_.segment_bytes) {
    // Rotation failure (e.g. ENOSPC creating the new segment) keeps the
    // records buffered and the tail sealed; the next Commit retries.
    LHMM_RETURN_IF_ERROR(Rotate());
  }
  SegmentInfo& seg = segments_.back();
  core::Status st = AppendToFile(env_, seg.path, buffer_);
  if (st.ok() && options_.fsync != FsyncPolicy::kNone) {
    st = FsyncPath(env_, seg.path);
  }
  if (!st.ok()) return SealTail(st);
  seg.file_bytes += static_cast<int64_t>(buffer_.size());
  seg.valid_bytes = seg.file_bytes;
  seg.record_count += buffered_records_;
  buffer_.clear();
  buffered_records_ = 0;
  last_committed_index_ = next_index_ - 1;
  return core::Status::Ok();
}

core::Status JournalWriter::SealTail(const core::Status& cause) {
  ++seal_events_;
  tail_sealed_ = true;
  SegmentInfo& seg = segments_.back();
  // The failed commit may have left a torn append, and after a failed fsync
  // the kernel has dropped the dirty pages — whatever is beyond the last
  // committed boundary is untrustworthy. Cut it off and persist the shrink;
  // the fsync here covers only the truncate, never the lost records (which
  // stay buffered and move to the next segment).
  core::Status repair = ShortenTo(seg.path, seg.valid_bytes);
  if (repair.ok() && options_.fsync != FsyncPolicy::kNone) {
    repair = FsyncPath(env_, seg.path);
  }
  if (!repair.ok()) {
    wedged_ = true;
    wedge_reason_ = cause.message() + "; seal repair failed: " +
                    repair.message();
    return core::Status::DataLoss("journal wedged: " + wedge_reason_);
  }
  seg.file_bytes = seg.valid_bytes;
  return core::Status(cause.code(),
                      "journal commit failed (tail sealed, will rotate): " +
                          cause.message());
}

core::Status JournalWriter::Rotate() {
  // Buffered records (if any) belong to the new segment.
  const int64_t first = next_index_ - buffered_records_;
  const int64_t seq = segments_.back().seq + 1;
  return CreateSegment(seq, first);
}

core::Status JournalWriter::CompactThrough(int64_t covered_index) {
  // If even the active tail is fully covered, rotate it away first so the
  // generic whole-segment rule below can reclaim it.
  if (!segments_.empty() && buffered_records_ == 0 &&
      segments_.back().record_count > 0 &&
      next_index_ - 1 <= covered_index) {
    LHMM_RETURN_IF_ERROR(Rotate());
  }
  bool deleted = false;
  while (segments_.size() > 1 &&
         segments_[1].first_index - 1 <= covered_index) {
    LHMM_RETURN_IF_ERROR(env_->Unlink(segments_.front().path));
    segments_.erase(segments_.begin());
    deleted = true;
  }
  if (deleted && options_.fsync != FsyncPolicy::kNone) {
    LHMM_RETURN_IF_ERROR(FsyncPath(env_, dir_));
  }
  return core::Status::Ok();
}

int64_t JournalWriter::total_bytes() const {
  int64_t total = 0;
  for (const SegmentInfo& seg : segments_) total += seg.file_bytes;
  return total;
}

}  // namespace lhmm::io
