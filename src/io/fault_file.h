#ifndef LHMM_IO_FAULT_FILE_H_
#define LHMM_IO_FAULT_FILE_H_

#include <cstdint>
#include <string>

#include "core/status.h"

namespace lhmm::io {

/// File-level fault injectors for crash-durability testing. Each one mutates
/// an existing file the way a real failure mode would, so recovery code can
/// be exercised against the storage faults it claims to survive:
///
///  - TornTail:      a write that was cut off by a crash (kill -9, power
///                   loss) before all bytes reached the file.
///  - ShortenFileTo: the same, expressed as an absolute size.
///  - FlipBit:       silent media corruption — one bit flipped in place.
///  - InjectGarbage: a misdirected or overlapped write — bytes overwritten
///                   mid-file with unrelated data.
///
/// These run post-hoc over closed files (the process under test is killed
/// first), which reproduces exactly what the recovery path sees on restart.

/// Truncates the last `bytes` bytes of `path` (clamped at zero length).
core::Status TornTail(const std::string& path, int64_t bytes);

/// Truncates `path` to exactly `size` bytes; fails if the file is shorter.
core::Status ShortenFileTo(const std::string& path, int64_t size);

/// Flips bit `bit` (0..7) of the byte at `offset`. Negative `offset` counts
/// from the end of the file (-1 is the last byte).
core::Status FlipBit(const std::string& path, int64_t offset, int bit = 0);

/// Overwrites the bytes at `offset` with `garbage` (no size change; fails if
/// the write would run past end of file). Negative `offset` counts from the
/// end of the file.
core::Status InjectGarbage(const std::string& path, int64_t offset,
                           const std::string& garbage);

/// Size of `path` in bytes, for computing injection offsets.
core::Result<int64_t> FileSize(const std::string& path);

}  // namespace lhmm::io

#endif  // LHMM_IO_FAULT_FILE_H_
