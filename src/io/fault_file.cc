#include "io/fault_file.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace lhmm::io {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Resolves a possibly-negative offset against the file size.
core::Result<int64_t> ResolveOffset(const std::string& path, int64_t offset) {
  core::Result<int64_t> size = FileSize(path);
  if (!size.ok()) return size.status();
  const int64_t resolved = offset < 0 ? *size + offset : offset;
  if (resolved < 0 || resolved >= *size) {
    return core::Status::InvalidArgument(
        path + ": offset " + std::to_string(offset) + " outside the file (" +
        std::to_string(*size) + " bytes)");
  }
  return resolved;
}

}  // namespace

core::Result<int64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return core::Status::IoError(Errno("cannot stat " + path));
  }
  return static_cast<int64_t>(st.st_size);
}

core::Status ShortenFileTo(const std::string& path, int64_t size) {
  core::Result<int64_t> current = FileSize(path);
  if (!current.ok()) return current.status();
  if (size < 0 || size > *current) {
    return core::Status::InvalidArgument(
        path + ": cannot shorten " + std::to_string(*current) + " bytes to " +
        std::to_string(size));
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return core::Status::IoError(Errno("cannot truncate " + path));
  }
  return core::Status::Ok();
}

core::Status TornTail(const std::string& path, int64_t bytes) {
  if (bytes < 0) {
    return core::Status::InvalidArgument("negative torn-tail size");
  }
  core::Result<int64_t> size = FileSize(path);
  if (!size.ok()) return size.status();
  return ShortenFileTo(path, std::max<int64_t>(0, *size - bytes));
}

core::Status FlipBit(const std::string& path, int64_t offset, int bit) {
  if (bit < 0 || bit > 7) {
    return core::Status::InvalidArgument("bit index must be 0..7");
  }
  core::Result<int64_t> at = ResolveOffset(path, offset);
  if (!at.ok()) return at.status();
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return core::Status::IoError(Errno("cannot open " + path));
  }
  unsigned char byte = 0;
  core::Status status;
  if (std::fseek(f, static_cast<long>(*at), SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, f) != 1) {
    status = core::Status::IoError("cannot read " + path + " at offset " +
                                   std::to_string(*at));
  } else {
    byte = static_cast<unsigned char>(byte ^ (1u << bit));
    if (std::fseek(f, static_cast<long>(*at), SEEK_SET) != 0 ||
        std::fwrite(&byte, 1, 1, f) != 1) {
      status = core::Status::IoError("cannot write " + path + " at offset " +
                                     std::to_string(*at));
    }
  }
  std::fclose(f);
  return status;
}

core::Status InjectGarbage(const std::string& path, int64_t offset,
                           const std::string& garbage) {
  if (garbage.empty()) return core::Status::Ok();
  core::Result<int64_t> at = ResolveOffset(path, offset);
  if (!at.ok()) return at.status();
  core::Result<int64_t> size = FileSize(path);
  if (!size.ok()) return size.status();
  if (*at + static_cast<int64_t>(garbage.size()) > *size) {
    return core::Status::InvalidArgument(
        path + ": garbage would run past end of file");
  }
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return core::Status::IoError(Errno("cannot open " + path));
  }
  core::Status status;
  if (std::fseek(f, static_cast<long>(*at), SEEK_SET) != 0 ||
      std::fwrite(garbage.data(), 1, garbage.size(), f) != garbage.size()) {
    status = core::Status::IoError("cannot write " + path + " at offset " +
                                   std::to_string(*at));
  }
  std::fclose(f);
  return status;
}

}  // namespace lhmm::io
