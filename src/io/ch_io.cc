#include "io/ch_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/strings.h"
#include "io/durable_file.h"
#include "io/error_context.h"
#include "io/journal.h"

namespace lhmm::io {

namespace {

constexpr char kMagic[8] = {'L', 'H', 'M', 'M', 'C', 'H', '0', '1'};

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, T value) {
  AppendRaw(out, &value, sizeof(value));
}

template <typename T>
void AppendVec(std::string* out, const std::vector<T>& v) {
  if (!v.empty()) AppendRaw(out, v.data(), v.size() * sizeof(T));
}

/// Sequential reader over the loaded bytes, tracking the offset for error
/// reporting.
class Cursor {
 public:
  Cursor(const std::string& path, const std::string& bytes)
      : path_(path), bytes_(bytes) {}

  int64_t offset() const { return static_cast<int64_t>(pos_); }
  size_t remaining() const { return bytes_.size() - pos_; }

  template <typename T>
  core::Status ReadPod(T* out, const char* what) {
    return ReadRaw(out, sizeof(T), what);
  }

  template <typename T>
  core::Status ReadVec(std::vector<T>* out, size_t count, const char* what) {
    out->resize(count);
    if (count == 0) return core::Status::Ok();
    return ReadRaw(out->data(), count * sizeof(T), what);
  }

  core::Status ReadRaw(void* out, size_t n, const char* what) {
    if (remaining() < n) {
      return OffsetError(
          path_, offset(),
          core::StrFormat("truncated: need %zu bytes for %s, %zu left", n,
                          what, remaining()));
    }
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return core::Status::Ok();
  }

 private:
  const std::string& path_;
  const std::string& bytes_;
  size_t pos_ = 0;
};

}  // namespace

core::Status SaveCHGraph(const network::CHGraph& ch, const std::string& path,
                         Env* env) {
  std::string payload;  // Everything after the magic, covered by the CRC.
  AppendPod(&payload, ch.fingerprint);
  AppendPod(&payload, ch.num_nodes);
  AppendPod(&payload, ch.num_shortcuts);
  AppendPod(&payload, ch.num_up_edges());
  AppendPod(&payload, ch.num_down_edges());
  AppendVec(&payload, ch.rank);
  AppendVec(&payload, ch.up_begin);
  AppendVec(&payload, ch.up_head);
  AppendVec(&payload, ch.up_weight);
  AppendVec(&payload, ch.down_begin);
  AppendVec(&payload, ch.down_tail);
  AppendVec(&payload, ch.down_weight);

  std::string file;
  file.reserve(sizeof(kMagic) + payload.size() + sizeof(uint32_t));
  AppendRaw(&file, kMagic, sizeof(kMagic));
  file += payload;
  AppendPod(&file, Crc32(payload.data(), payload.size()));
  return AtomicWriteFile(env, path, file);
}

core::Result<network::CHGraph> LoadCHGraph(const std::string& path,
                                           const network::RoadNetwork* expect) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::NotFound(path + ": cannot open");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  Cursor cur(path, bytes);
  char magic[sizeof(kMagic)];
  core::Status s = cur.ReadRaw(magic, sizeof(magic), "magic");
  if (!s.ok()) return s;
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return OffsetError(path, 0, "bad magic (not an LHMM CH file?)");
  }
  // Verify the checksum before trusting any field: the payload spans from
  // after the magic to just before the 4-byte trailer.
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t)) {
    return OffsetError(path, cur.offset(), "truncated: CRC trailer missing");
  }
  const size_t payload_size = bytes.size() - sizeof(kMagic) - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + sizeof(kMagic) + payload_size,
              sizeof(stored_crc));
  const uint32_t actual_crc =
      Crc32(bytes.data() + sizeof(kMagic), payload_size);
  if (stored_crc != actual_crc) {
    return OffsetError(
        path, static_cast<int64_t>(sizeof(kMagic) + payload_size),
        core::StrFormat("CRC mismatch: stored %08x, computed %08x",
                        stored_crc, actual_crc));
  }

  network::CHGraph ch;
  int64_t up_edges = 0, down_edges = 0;
  if (!(s = cur.ReadPod(&ch.fingerprint, "fingerprint")).ok()) return s;
  if (!(s = cur.ReadPod(&ch.num_nodes, "num_nodes")).ok()) return s;
  if (!(s = cur.ReadPod(&ch.num_shortcuts, "num_shortcuts")).ok()) return s;
  if (!(s = cur.ReadPod(&up_edges, "up edge count")).ok()) return s;
  if (!(s = cur.ReadPod(&down_edges, "down edge count")).ok()) return s;
  if (ch.num_nodes < 0) {
    return OffsetError(path, cur.offset(), "negative num_nodes");
  }
  // Counts are bounded by the payload size before any resize, so a corrupt
  // header cannot drive a huge allocation.
  const int64_t max_plausible =
      static_cast<int64_t>(payload_size / sizeof(int32_t)) + 1;
  if (up_edges < 0 || down_edges < 0 || up_edges > max_plausible ||
      down_edges > max_plausible ||
      static_cast<int64_t>(ch.num_nodes) > max_plausible) {
    return OffsetError(path, cur.offset(), "implausible edge/node counts");
  }
  const size_t n = static_cast<size_t>(ch.num_nodes);
  if (!(s = cur.ReadVec(&ch.rank, n, "rank")).ok()) return s;
  if (!(s = cur.ReadVec(&ch.up_begin, n + 1, "up_begin")).ok()) return s;
  if (!(s = cur.ReadVec(&ch.up_head, up_edges, "up_head")).ok()) return s;
  if (!(s = cur.ReadVec(&ch.up_weight, up_edges, "up_weight")).ok()) return s;
  if (!(s = cur.ReadVec(&ch.down_begin, n + 1, "down_begin")).ok()) return s;
  if (!(s = cur.ReadVec(&ch.down_tail, down_edges, "down_tail")).ok()) {
    return s;
  }
  if (!(s = cur.ReadVec(&ch.down_weight, down_edges, "down_weight")).ok()) {
    return s;
  }
  if (cur.remaining() != sizeof(uint32_t)) {
    return OffsetError(
        path, cur.offset(),
        core::StrFormat("trailing garbage: %zu bytes after payload",
                        cur.remaining() - sizeof(uint32_t)));
  }
  const std::string invalid = ch.Validate();
  if (!invalid.empty()) {
    return OffsetError(path, static_cast<int64_t>(sizeof(kMagic)),
                       "invalid hierarchy: " + invalid);
  }
  if (expect != nullptr) {
    const uint64_t want = network::CHGraph::NetworkFingerprint(*expect);
    if (ch.fingerprint != want) {
      return core::Status::FailedPrecondition(core::StrFormat(
          "%s: hierarchy was preprocessed for a different network "
          "(fingerprint %016llx, expected %016llx)",
          path.c_str(), static_cast<unsigned long long>(ch.fingerprint),
          static_cast<unsigned long long>(want)));
    }
  }
  ch.Finish();
  return ch;
}

}  // namespace lhmm::io
