#include "io/trajectory_io.h"

#include <fstream>

#include "core/csv.h"
#include "core/strings.h"
#include "io/error_context.h"

namespace lhmm::io {

core::Status SaveTrajectoriesCsv(const std::vector<traj::MatchedTrajectory>& data,
                                 const std::string& path) {
  core::CsvWriter csv(path);
  csv.AddRow({"traj", "channel", "seq", "t", "x", "y", "tower"});
  for (size_t ti = 0; ti < data.size(); ++ti) {
    const auto& mt = data[ti];
    for (int i = 0; i < mt.cellular.size(); ++i) {
      const auto& p = mt.cellular[i];
      csv.AddRow({core::StrFormat("%zu", ti), "cell", core::StrFormat("%d", i),
                  core::StrFormat("%.3f", p.t), core::StrFormat("%.3f", p.pos.x),
                  core::StrFormat("%.3f", p.pos.y),
                  core::StrFormat("%d", p.tower)});
    }
    for (int i = 0; i < mt.gps.size(); ++i) {
      const auto& p = mt.gps[i];
      csv.AddRow({core::StrFormat("%zu", ti), "gps", core::StrFormat("%d", i),
                  core::StrFormat("%.3f", p.t), core::StrFormat("%.3f", p.pos.x),
                  core::StrFormat("%.3f", p.pos.y), "-1"});
    }
  }
  LHMM_RETURN_IF_ERROR(csv.Flush());

  std::vector<std::vector<network::SegmentId>> paths;
  paths.reserve(data.size());
  for (const auto& mt : data) paths.push_back(mt.truth_path);
  return SavePaths(paths, path + ".paths");
}

core::Result<std::vector<traj::MatchedTrajectory>> LoadTrajectoriesCsv(
    const std::string& path) {
  const auto rows = core::ReadCsv(path);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return EmptyFileError(path);
  std::vector<traj::MatchedTrajectory> out;
  for (size_t i = 1; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() < 7) {
      return RowError(path, i,
                      core::StrFormat("expected 7 columns, got %zu", row.size()));
    }
    int ti = 0;
    int tower = -1;
    double t = 0.0;
    double x = 0.0;
    double y = 0.0;
    if (!core::ParseInt(row[0], &ti) || !core::ParseDouble(row[3], &t) ||
        !core::ParseDouble(row[4], &x) || !core::ParseDouble(row[5], &y) ||
        !core::ParseInt(row[6], &tower)) {
      return RowError(path, i, "bad trajectory fields");
    }
    if (ti < 0) {
      return RowError(path, i, "negative trajectory id");
    }
    if (static_cast<size_t>(ti) >= out.size()) out.resize(ti + 1);
    traj::TrajPoint p{{x, y}, t, tower};
    if (row[1] == "cell") {
      out[ti].cellular.points.push_back(p);
    } else if (row[1] == "gps") {
      out[ti].gps.points.push_back(p);
    } else {
      return RowError(path, i, "unknown channel '" + row[1] + "'");
    }
  }
  const auto paths = LoadPaths(path + ".paths");
  if (!paths.ok()) return paths.status();
  if (paths->size() > out.size()) out.resize(paths->size());
  for (size_t i = 0; i < paths->size(); ++i) out[i].truth_path = (*paths)[i];
  return out;
}

core::Status SavePaths(const std::vector<std::vector<network::SegmentId>>& paths,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return core::Status::IoError("cannot open " + path);
  for (size_t i = 0; i < paths.size(); ++i) {
    out << i << ":";
    for (size_t j = 0; j < paths[i].size(); ++j) {
      out << (j == 0 ? "" : " ") << paths[i][j];
    }
    out << "\n";
  }
  if (!out.good()) return core::Status::IoError("write failed for " + path);
  return core::Status::Ok();
}

core::Result<std::vector<std::vector<network::SegmentId>>> LoadPaths(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return core::Status::IoError("cannot open " + path);
  std::vector<std::vector<network::SegmentId>> out;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return LineError(path, lineno, "missing ':' separator");
    }
    int idx = 0;
    if (!core::ParseInt(line.substr(0, colon), &idx) || idx < 0) {
      return LineError(path, lineno, "bad path index");
    }
    if (static_cast<size_t>(idx) >= out.size()) out.resize(idx + 1);
    std::vector<network::SegmentId> segs;
    for (const std::string& tok : core::StrSplit(line.substr(colon + 1), ' ')) {
      if (core::StrTrim(tok).empty()) continue;
      int sid = 0;
      if (!core::ParseInt(tok, &sid)) {
        return LineError(path, lineno, "bad segment id '" + tok + "'");
      }
      segs.push_back(sid);
    }
    out[idx] = std::move(segs);
  }
  return out;
}

}  // namespace lhmm::io
