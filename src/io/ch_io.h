#ifndef LHMM_IO_CH_IO_H_
#define LHMM_IO_CH_IO_H_

#include <string>

#include "core/status.h"
#include "io/env.h"
#include "network/contraction.h"
#include "network/road_network.h"

namespace lhmm::io {

/// On-disk persistence for preprocessed contraction hierarchies, so servers
/// skip the contraction pass at startup (`lhmm_cli ch-build` once, then
/// `lhmm_serve --router=ch --ch-file=...`).
///
/// Format (little-endian, single file):
///   magic "LHMMCH01" | u64 network fingerprint | i32 num_nodes |
///   i64 num_shortcuts | i64 up edge count | i64 down edge count |
///   rank[i32 x n] | up_begin[i32 x n+1] | up_head[i32] | up_weight[f64] |
///   down_begin[i32 x n+1] | down_tail[i32] | down_weight[f64] |
///   u32 CRC-32 of everything after the magic.
///
/// Loading rejects wrong magic, truncation, trailing garbage, CRC mismatch,
/// and structurally invalid payloads with typed errors naming the file and
/// byte offset (io/error_context.h conventions); when `expect` is given, a
/// hierarchy built for a different network is refused up front.
core::Status SaveCHGraph(const network::CHGraph& ch, const std::string& path,
                         Env* env = nullptr);

core::Result<network::CHGraph> LoadCHGraph(
    const std::string& path, const network::RoadNetwork* expect = nullptr);

}  // namespace lhmm::io

#endif  // LHMM_IO_CH_IO_H_
