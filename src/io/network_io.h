#ifndef LHMM_IO_NETWORK_IO_H_
#define LHMM_IO_NETWORK_IO_H_

#include <string>

#include "core/status.h"
#include "network/road_network.h"

namespace lhmm::io {

/// Writes a road network as a pair of CSV files: `<prefix>_nodes.csv`
/// (id,x,y) and `<prefix>_segments.csv`
/// (id,from,to,length,speed_limit,level,reverse,polyline) where polyline is a
/// `x1 y1;x2 y2;...` vertex list in local meters.
core::Status SaveNetworkCsv(const network::RoadNetwork& net,
                            const std::string& prefix);

/// Loads a road network previously written by SaveNetworkCsv. Validates
/// structure before returning.
core::Result<network::RoadNetwork> LoadNetworkCsv(const std::string& prefix);

/// Exports the network as a GeoJSON FeatureCollection of LineStrings in local
/// meter coordinates (set `origin` to georeference into WGS-84 lon/lat).
core::Status ExportNetworkGeoJson(const network::RoadNetwork& net,
                                  const std::string& path);

}  // namespace lhmm::io

#endif  // LHMM_IO_NETWORK_IO_H_
