#ifndef LHMM_IO_TRAJECTORY_IO_H_
#define LHMM_IO_TRAJECTORY_IO_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "traj/trajectory.h"

namespace lhmm::io {

/// Writes matched trajectories to one CSV with columns
/// (traj,channel,seq,t,x,y,tower): channel is "cell" or "gps"; tower is -1
/// for GPS samples. Truth paths go to `<path>.paths` with lines
/// `traj:seg1 seg2 ...`.
core::Status SaveTrajectoriesCsv(const std::vector<traj::MatchedTrajectory>& data,
                                 const std::string& path);

/// Loads trajectories previously written by SaveTrajectoriesCsv.
core::Result<std::vector<traj::MatchedTrajectory>> LoadTrajectoriesCsv(
    const std::string& path);

/// Writes matched road paths (one line of segment ids per trajectory) to a
/// plain text file; the format consumed by downstream flow-analysis tools.
core::Status SavePaths(const std::vector<std::vector<network::SegmentId>>& paths,
                       const std::string& path);

/// Loads a path file written by SavePaths.
core::Result<std::vector<std::vector<network::SegmentId>>> LoadPaths(
    const std::string& path);

}  // namespace lhmm::io

#endif  // LHMM_IO_TRAJECTORY_IO_H_
