#ifndef LHMM_IO_JOURNAL_H_
#define LHMM_IO_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/env.h"

namespace lhmm::io {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `n` bytes. Exposed so tests
/// and tools can frame or deliberately mis-frame journal records.
uint32_t Crc32(const void* data, size_t n);

/// When the journal forces buffered records to stable storage.
enum class FsyncPolicy {
  /// fsync after every record: an acknowledged event is never lost, at the
  /// cost of one fsync per event. The only policy under which recovery is
  /// guaranteed to cover every acknowledged write.
  kEveryRecord,
  /// fsync once per Commit() (the server calls Commit on its tick heartbeat):
  /// group commit. A crash loses at most the events since the last tick —
  /// clients observe this as "acknowledged but rolled back" and must resume
  /// from the server's reported progress.
  kEveryTick,
  /// Never fsync (the OS flushes when it likes). Fastest; a crash may lose
  /// everything still in the page cache. For benchmarks and tests only.
  kNone
};

const char* FsyncPolicyName(FsyncPolicy policy);
/// Parses "record"/"tick"/"none"; false on anything else.
bool ParseFsyncPolicy(const std::string& text, FsyncPolicy* out);

struct JournalOptions {
  FsyncPolicy fsync = FsyncPolicy::kEveryTick;
  /// Rotate to a new segment file once the current one reaches this size.
  int64_t segment_bytes = 4 << 20;
  /// Syscall boundary for every write/fsync/rename/unlink the journal makes.
  /// nullptr = Env::Default(); tests inject a FaultEnv here.
  Env* env = nullptr;
};

/// One decoded journal record: its 1-based position in the global record
/// sequence plus the opaque payload the writer appended.
struct JournalRecord {
  int64_t index = 0;
  std::string payload;
};

/// One segment file of the journal as found on disk, in sequence order.
struct SegmentInfo {
  std::string path;
  int64_t seq = 0;          ///< Number embedded in the file name (sorted by).
  int64_t first_index = 0;  ///< Global index of the segment's first record.
  int64_t record_count = 0; ///< Valid records decoded from this segment.
  int64_t valid_bytes = 0;  ///< Bytes up to the end of the last valid record.
  int64_t file_bytes = 0;   ///< Actual file size (>= valid_bytes if torn).
};

/// Everything ScanJournal learned about a journal directory. A torn tail on
/// the *final* segment is the expected signature of a crash mid-write and is
/// treated as a clean end of the log (`clean` stays true, `torn_tail` set).
/// Anything else that stops the scan early — a bad CRC, an impossible length,
/// garbage between records, a short or empty non-final segment — is mid-file
/// corruption: `clean` is false and `corruption` names the exact file and
/// byte offset. Records decoded before the stop point are always returned;
/// recovery replays that valid prefix and falls back instead of aborting.
struct JournalScan {
  std::vector<SegmentInfo> segments;
  std::vector<JournalRecord> records;  ///< Empty when keep_payloads false.
  int64_t next_index = 1;  ///< Index the next appended record would get.
  bool torn_tail = false;  ///< Final segment ended mid-record (clean EOF).
  bool clean = true;       ///< False when mid-file corruption stopped the scan.
  core::Status corruption; ///< kOk, or the file+offset of the corruption.
};

/// Scans every journal segment in `dir` (files named wal-<seq>.seg), decoding
/// and CRC-checking each record. With `keep_payloads` false only the framing
/// is validated (cheap existence/health check). A missing or unreadable
/// directory is a hard error; corrupt content is reported via the
/// JournalScan fields as described above, never by failing the call.
core::Result<JournalScan> ScanJournal(const std::string& dir,
                                      bool keep_payloads = true);

/// Append-only, CRC32-framed, length-prefixed write-ahead log over numbered
/// segment files in one directory:
///
///   wal-00000001.seg: [8-byte magic "LHMMWAL1"][u64le first_index]
///                     [u32le len][u32le crc32(payload)][payload] ...
///   wal-00000002.seg: ...
///
/// Records are buffered in memory and written by Commit() as one group
/// (group commit); FsyncPolicy::kEveryRecord commits inside Append instead.
/// Segments rotate at `segment_bytes` and CompactThrough deletes segments
/// wholly covered by a durable snapshot. Open() re-scans the directory,
/// truncates a torn tail (or a corrupt suffix) so the log ends on a record
/// boundary, and continues appending where the valid log ended — exactly the
/// repair a restarted server needs after kill -9.
///
/// Not thread-safe: the producer thread that owns the server owns the
/// journal, same single-producer contract as srv::MatchServer.
class JournalWriter {
 public:
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens (creating `dir` if needed) and repairs the journal as described
  /// above. Fails only on real I/O errors, never on torn/corrupt content.
  static core::Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& dir, const JournalOptions& options);

  /// Buffers one record and assigns it the next global index (returned).
  /// Under kEveryRecord the record is committed (written + fsynced) before
  /// Append returns; under the other policies it becomes durable at the next
  /// Commit().
  core::Result<int64_t> Append(const std::string& payload);

  /// Writes all buffered records to the current segment (rotating first if
  /// over the size threshold) and fsyncs per policy. The group-commit
  /// heartbeat: the server calls this once per tick.
  ///
  /// Resource-exhaustion contract: if the write or the fsync fails, the
  /// tail segment is *sealed* — truncated back to its last committed record
  /// boundary and never appended to or fsynced again. A failed fsync means
  /// the kernel may already have dropped the dirty pages (fsyncgate), so
  /// retrying the fsync and reporting success would be a durability lie;
  /// instead the still-buffered records are re-written into a fresh segment
  /// by the next Commit, with their original indices (the sealed segment
  /// was truncated back, so the global record sequence stays contiguous).
  /// If even the truncate repair fails the journal is *wedged*: every later
  /// Append/Commit returns kDataLoss and the server must stop claiming
  /// durability.
  core::Status Commit();

  /// Deletes every segment whose records are all <= `covered_index` (they
  /// are fully covered by a durable snapshot). The active tail segment is
  /// first rotated away when it too is fully covered, so a long-lived server
  /// with periodic checkpoints keeps a bounded journal.
  core::Status CompactThrough(int64_t covered_index);

  const std::string& dir() const { return dir_; }
  /// Index the next Append will assign.
  int64_t next_index() const { return next_index_; }
  /// Highest record index written and flushed per the fsync policy.
  int64_t last_committed_index() const { return last_committed_index_; }
  int segment_count() const { return static_cast<int>(segments_.size()); }
  /// Bytes across all live segment files, including buffered-but-uncommitted
  /// records' bytes once they are written.
  int64_t total_bytes() const;
  /// Times a failed commit sealed the tail segment (survivable: the journal
  /// rolled forward into a fresh segment).
  int64_t seal_events() const { return seal_events_; }
  /// True once a seal repair itself failed: the journal can no longer make
  /// any durability promise and every Append/Commit returns kDataLoss.
  bool wedged() const { return wedged_; }

 private:
  JournalWriter() = default;

  /// Closes the current segment and starts wal-<seq+1>.seg at next_index_.
  core::Status Rotate();
  /// Creates wal-<seq>.seg with a header claiming `first_index`.
  core::Status CreateSegment(int64_t seq, int64_t first_index);
  /// Truncates a segment file to `size` bytes (tail repair on Open).
  core::Status ShortenTo(const std::string& path, int64_t size);
  /// Seals the tail segment after a failed commit (`cause`): truncates it
  /// back to its committed boundary, persists the shrink, and marks it
  /// never-touch-again. Wedges the journal if the repair fails. Returns the
  /// error the caller should propagate.
  core::Status SealTail(const core::Status& cause);

  Env* env_ = nullptr;
  std::string dir_;
  JournalOptions options_;
  std::vector<SegmentInfo> segments_;  ///< Live segments, oldest first.
  std::string buffer_;                 ///< Framed records awaiting Commit.
  int64_t buffered_records_ = 0;
  int64_t next_index_ = 1;
  int64_t last_committed_index_ = 0;
  bool tail_sealed_ = false;  ///< Tail failed a commit; rotate before writing.
  bool wedged_ = false;
  int64_t seal_events_ = 0;
  std::string wedge_reason_;
};

/// Formats the path of segment `seq` inside `dir` (wal-<seq 8-digit>.seg).
std::string JournalSegmentPath(const std::string& dir, int64_t seq);

}  // namespace lhmm::io

#endif  // LHMM_IO_JOURNAL_H_
