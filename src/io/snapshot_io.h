#ifndef LHMM_IO_SNAPSHOT_IO_H_
#define LHMM_IO_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/env.h"

namespace lhmm::io {

/// Writer for the versioned, line-oriented snapshot format used by graceful
/// drain (srv::MatchServer) and any other state that must survive a process
/// restart byte-identically:
///
///   lhmm-snapshot <kind> <version>
///   <key> <token> <token> ...
///   ...
///
/// Tokens are space-separated; doubles are written with %.17g so they
/// round-trip exactly (restored state must continue byte-identical, so "close
/// enough" floats are not acceptable). A line's final field may be free text
/// (AddTail) which runs to end of line. The file is written atomically
/// (write temp, fsync, rename, fsync the directory), so a crash mid-write —
/// graceful drain or checkpoint alike — leaves the previous snapshot intact.
class SnapshotWriter {
 public:
  SnapshotWriter(const std::string& kind, int version);

  SnapshotWriter& BeginLine(const std::string& key);
  SnapshotWriter& AddInt(int64_t value);
  SnapshotWriter& AddDouble(double value);
  /// Free text running to end of line; must be the line's last field and must
  /// not contain newlines.
  SnapshotWriter& AddTail(const std::string& text);
  void EndLine();

  const std::string& contents() const { return buf_; }
  /// Atomic write as described above; `durable` false skips the fsyncs for
  /// callers that don't need power-loss safety (fast tests, scratch output).
  /// `env` is the syscall boundary (nullptr = Env::Default()); on any
  /// injected or real failure the previous file at `path` is untouched.
  core::Status WriteFile(const std::string& path, bool durable = true,
                         Env* env = nullptr) const;

 private:
  std::string buf_;
  bool line_open_ = false;
};

/// Strict reader for the format above. Every parse failure names the exact
/// file and 1-based line (io::LineError), the same corrupt-input contract as
/// the CSV loaders: a truncated or hand-mangled snapshot must fail loudly and
/// precisely, never restore half a server silently.
class SnapshotReader {
 public:
  /// Opens `path`, validating the header's kind and version (versions
  /// 1..max_version accepted).
  static core::Result<SnapshotReader> Open(const std::string& path,
                                           const std::string& kind,
                                           int max_version);

  int version() const { return version_; }

  /// Advances to the next non-empty line; false at end of file.
  bool NextLine();
  /// First token of the current line.
  const std::string& key() const { return key_; }

  /// Consume the next token of the current line as a typed value.
  core::Result<int64_t> TakeInt();
  core::Result<double> TakeDouble();
  /// Consumes the rest of the line verbatim (possibly empty).
  std::string TakeTail();
  /// OK when the current line has no unconsumed tokens left.
  core::Status ExpectLineEnd();

  /// An error pointing at the current line of the snapshot file.
  core::Status Error(const std::string& what) const;

 private:
  SnapshotReader() = default;

  /// The next space-delimited token, or an error when the line is exhausted.
  core::Result<std::string> TakeToken();

  std::string source_;
  std::vector<std::string> lines_;
  size_t index_ = 0;       ///< 0-based physical line of the current line.
  bool started_ = false;
  std::string key_;
  std::string rest_;       ///< Unconsumed remainder of the current line.
  int version_ = 0;
};

}  // namespace lhmm::io

#endif  // LHMM_IO_SNAPSHOT_IO_H_
