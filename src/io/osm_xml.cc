#include "io/osm_xml.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "core/strings.h"

namespace lhmm::io {

namespace {

/// One parsed XML element open-tag: name plus attributes.
struct Element {
  std::string name;
  std::unordered_map<std::string, std::string> attrs;
  bool self_closing = false;
  size_t end = 0;  ///< Offset just past the closing '>'.
};

/// Parses the element whose '<' is at `pos`. Returns false on malformed
/// syntax or when `pos` does not start an open tag (comments, closers, and
/// declarations are skipped by the caller).
bool ParseElement(const std::string& xml, size_t pos, Element* out) {
  if (pos >= xml.size() || xml[pos] != '<') return false;
  const size_t close = xml.find('>', pos);
  if (close == std::string::npos) return false;
  std::string body = xml.substr(pos + 1, close - pos - 1);
  out->end = close + 1;
  out->self_closing = !body.empty() && body.back() == '/';
  if (out->self_closing) body.pop_back();

  // Element name.
  size_t i = 0;
  while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) {
    ++i;
  }
  out->name = body.substr(0, i);
  out->attrs.clear();
  // Attributes: key="value".
  while (i < body.size()) {
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    const size_t eq = body.find('=', i);
    if (eq == std::string::npos) break;
    const std::string key(core::StrTrim(body.substr(i, eq - i)));
    const size_t q1 = body.find_first_of("\"'", eq);
    if (q1 == std::string::npos) return false;
    const char quote = body[q1];
    const size_t q2 = body.find(quote, q1 + 1);
    if (q2 == std::string::npos) return false;
    out->attrs[key] = body.substr(q1 + 1, q2 - q1 - 1);
    i = q2 + 1;
  }
  return true;
}

/// Parses OSM `maxspeed` values ("50", "50 km/h", "30 mph") to m/s.
double ParseMaxspeed(const std::string& value, double fallback) {
  double number = 0.0;
  size_t i = 0;
  while (i < value.size() &&
         (std::isdigit(static_cast<unsigned char>(value[i])) || value[i] == '.')) {
    ++i;
  }
  if (i == 0 || !core::ParseDouble(value.substr(0, i), &number)) return fallback;
  if (value.find("mph") != std::string::npos) return number * 0.44704;
  return number / 3.6;  // km/h default.
}

network::RoadLevel LevelOf(const std::string& highway) {
  if (highway.rfind("motorway", 0) == 0 || highway.rfind("trunk", 0) == 0 ||
      highway.rfind("primary", 0) == 0) {
    return network::RoadLevel::kArterial;
  }
  if (highway.rfind("secondary", 0) == 0 || highway.rfind("tertiary", 0) == 0) {
    return network::RoadLevel::kCollector;
  }
  return network::RoadLevel::kLocal;
}

}  // namespace

core::Result<OsmImportResult> ParseOsmXml(const std::string& xml,
                                          const OsmImportOptions& options) {
  struct RawNode {
    geo::LatLon ll;
  };
  std::unordered_map<long long, RawNode> raw_nodes;
  struct RawWay {
    std::vector<long long> nodes;
    std::string highway;
    double speed = 0.0;
    bool oneway = false;
  };
  std::vector<RawWay> ways;

  // Single pass over tags.
  size_t pos = xml.find('<');
  RawWay* open_way = nullptr;
  RawWay pending;
  while (pos != std::string::npos) {
    if (xml.compare(pos, 4, "<!--") == 0) {
      const size_t end = xml.find("-->", pos);
      if (end == std::string::npos) break;
      pos = xml.find('<', end + 3);
      continue;
    }
    if (pos + 1 < xml.size() && (xml[pos + 1] == '/' || xml[pos + 1] == '?')) {
      if (xml.compare(pos, 6, "</way>") == 0 && open_way != nullptr) {
        ways.push_back(pending);
        open_way = nullptr;
      }
      pos = xml.find('<', pos + 1);
      continue;
    }
    Element el;
    if (!ParseElement(xml, pos, &el)) {
      return core::Status::InvalidArgument(
          core::StrFormat("malformed XML near offset %zu", pos));
    }
    if (el.name == "node") {
      double lat = 0.0;
      double lon = 0.0;
      // Node ids can exceed int; parse with strtoll.
      const auto it = el.attrs.find("id");
      if (it == el.attrs.end()) {
        return core::Status::InvalidArgument("node without id");
      }
      const long long id = std::strtoll(it->second.c_str(), nullptr, 10);
      if (!core::ParseDouble(el.attrs.count("lat") ? el.attrs["lat"] : "", &lat) ||
          !core::ParseDouble(el.attrs.count("lon") ? el.attrs["lon"] : "", &lon)) {
        return core::Status::InvalidArgument(
            core::StrFormat("node %lld without lat/lon", id));
      }
      raw_nodes[id] = RawNode{{lat, lon}};
    } else if (el.name == "way") {
      pending = RawWay{};
      pending.speed = options.default_speed;
      if (el.self_closing) {
        // Empty way: ignore.
      } else {
        open_way = &pending;
      }
    } else if (el.name == "nd" && open_way != nullptr) {
      const auto it = el.attrs.find("ref");
      if (it != el.attrs.end()) {
        open_way->nodes.push_back(std::strtoll(it->second.c_str(), nullptr, 10));
      }
    } else if (el.name == "tag" && open_way != nullptr) {
      const std::string k = el.attrs.count("k") ? el.attrs["k"] : "";
      const std::string v = el.attrs.count("v") ? el.attrs["v"] : "";
      if (k == "highway") open_way->highway = v;
      if (k == "maxspeed") {
        open_way->speed = ParseMaxspeed(v, options.default_speed);
      }
      if (k == "oneway") open_way->oneway = (v == "yes" || v == "1" || v == "true");
    }
    pos = xml.find('<', el.end);
  }

  // Filter ways, compute projection origin from referenced nodes.
  std::vector<const RawWay*> kept;
  double lat_sum = 0.0;
  double lon_sum = 0.0;
  int coord_count = 0;
  for (const RawWay& way : ways) {
    if (way.nodes.size() < 2) continue;
    if (std::find(options.highway_classes.begin(), options.highway_classes.end(),
                  way.highway) == options.highway_classes.end()) {
      continue;
    }
    bool complete = true;
    for (long long id : way.nodes) {
      if (!raw_nodes.count(id)) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;
    kept.push_back(&way);
    for (long long id : way.nodes) {
      lat_sum += raw_nodes[id].ll.lat;
      lon_sum += raw_nodes[id].ll.lon;
      ++coord_count;
    }
  }
  if (kept.empty()) {
    return core::Status::InvalidArgument("no drivable ways found in OSM input");
  }

  OsmImportResult result;
  result.origin = {lat_sum / coord_count, lon_sum / coord_count};
  const geo::LocalProjection proj(result.origin);

  // Materialize nodes on demand; each way edge becomes one segment (plus the
  // reverse twin unless oneway).
  std::unordered_map<long long, network::NodeId> node_of;
  auto intern = [&](long long id) {
    const auto it = node_of.find(id);
    if (it != node_of.end()) return it->second;
    const network::NodeId v = result.net.AddNode(proj.Forward(raw_nodes[id].ll));
    node_of[id] = v;
    return v;
  };
  for (const RawWay* way : kept) {
    const network::RoadLevel level = LevelOf(way->highway);
    for (size_t i = 0; i + 1 < way->nodes.size(); ++i) {
      const network::NodeId a = intern(way->nodes[i]);
      const network::NodeId b = intern(way->nodes[i + 1]);
      if (a == b) continue;
      if (way->oneway) {
        result.net.AddSegment(a, b, way->speed, level);
      } else {
        result.net.AddTwoWay(a, b, way->speed, level);
      }
    }
  }
  if (options.keep_largest_scc) {
    result.net =
        result.net.InducedSubnetwork(result.net.LargestStronglyConnectedComponent());
  }
  LHMM_RETURN_IF_ERROR(result.net.Validate());
  return result;
}

core::Result<OsmImportResult> LoadOsmXml(const std::string& path,
                                         const OsmImportOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return core::Status::IoError("cannot open " + path);
  std::string xml((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return ParseOsmXml(xml, options);
}

}  // namespace lhmm::io
