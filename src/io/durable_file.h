#ifndef LHMM_IO_DURABLE_FILE_H_
#define LHMM_IO_DURABLE_FILE_H_

#include <string>

#include "core/status.h"
#include "io/env.h"

namespace lhmm::io {

/// Flushes a file's contents to stable storage (fsync). The distinction
/// between "written" and "durable" is the whole point of the durability
/// layer: a write that only reached the page cache is lost on power failure.
/// All helpers here go through `env` (pass nullptr for Env::Default()) so a
/// FaultEnv can make any individual syscall fail on schedule.
core::Status FsyncPath(Env* env, const std::string& path);
inline core::Status FsyncPath(const std::string& path) {
  return FsyncPath(nullptr, path);
}

/// Flushes the *directory entry* of `path` (fsync on its parent directory),
/// which is what makes a rename or a newly created file itself survive a
/// crash. A rename that was not followed by a directory fsync can vanish.
core::Status FsyncParentDir(Env* env, const std::string& path);
inline core::Status FsyncParentDir(const std::string& path) {
  return FsyncParentDir(nullptr, path);
}

/// Writes `contents` to `path` atomically: write to `path + ".tmp"`, flush,
/// optionally fsync, rename over `path`, then fsync the directory. Readers
/// therefore always see either the complete old file or the complete new one
/// — never a torn mixture — and a crash at any point leaves the previous
/// file intact. On *any* failure (including a failed rename or fsync) the
/// tmp file is unlinked and `path` is untouched, so an injected ENOSPC can
/// never leave a readable partial. `durable` controls the fsync calls
/// (tests that don't care about power loss can skip them for speed).
core::Status AtomicWriteFile(Env* env, const std::string& path,
                             const std::string& contents, bool durable = true);
inline core::Status AtomicWriteFile(const std::string& path,
                                    const std::string& contents,
                                    bool durable = true) {
  return AtomicWriteFile(nullptr, path, contents, durable);
}

/// Appends `data` to `path` (creating it if absent) and reports the write
/// through a Status instead of silently shortening. Used by the journal's
/// group-commit path; fsync is the caller's decision via FsyncPath.
core::Status AppendToFile(Env* env, const std::string& path,
                          const std::string& data);
inline core::Status AppendToFile(const std::string& path,
                                 const std::string& data) {
  return AppendToFile(nullptr, path, data);
}

/// Creates (or truncates) `path` with exactly `contents`, optionally synced.
/// Non-atomic — the journal uses it for brand-new segment files whose
/// readers tolerate a torn tail by design; everything else wants
/// AtomicWriteFile.
core::Status TruncateWriteFile(Env* env, const std::string& path,
                               const std::string& contents, bool durable);

}  // namespace lhmm::io

#endif  // LHMM_IO_DURABLE_FILE_H_
