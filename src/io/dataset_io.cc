#include "io/dataset_io.h"

#include "core/csv.h"
#include "core/strings.h"
#include "io/error_context.h"
#include "io/network_io.h"
#include "io/trajectory_io.h"

namespace lhmm::io {

core::Status SaveDatasetBundle(const sim::Dataset& ds, const std::string& prefix) {
  LHMM_RETURN_IF_ERROR(SaveNetworkCsv(ds.network, prefix));
  LHMM_RETURN_IF_ERROR(SaveTrajectoriesCsv(ds.train, prefix + "_train.csv"));
  LHMM_RETURN_IF_ERROR(SaveTrajectoriesCsv(ds.test, prefix + "_test.csv"));
  core::CsvWriter towers(prefix + "_towers.csv");
  towers.AddRow({"id", "x", "y"});
  for (const auto& t : ds.towers) {
    towers.AddRow({core::StrFormat("%d", t.id), core::StrFormat("%.3f", t.pos.x),
                   core::StrFormat("%.3f", t.pos.y)});
  }
  return towers.Flush();
}

core::Result<DatasetBundle> LoadDatasetBundle(const std::string& prefix) {
  DatasetBundle b;
  auto net = LoadNetworkCsv(prefix);
  if (!net.ok()) return net.status();
  b.net = std::move(*net);
  auto train = LoadTrajectoriesCsv(prefix + "_train.csv");
  if (!train.ok()) return train.status();
  b.train = std::move(*train);
  auto test = LoadTrajectoriesCsv(prefix + "_test.csv");
  if (!test.ok()) return test.status();
  b.test = std::move(*test);
  const std::string towers_file = prefix + "_towers.csv";
  const auto towers = core::ReadCsv(towers_file);
  if (!towers.ok()) return towers.status();
  if (towers->empty()) return EmptyFileError(towers_file);
  for (size_t i = 1; i < towers->size(); ++i) {
    const auto& row = (*towers)[i];
    int id = 0;
    double x = 0.0;
    double y = 0.0;
    if (row.size() < 3 || !core::ParseInt(row[0], &id) ||
        !core::ParseDouble(row[1], &x) || !core::ParseDouble(row[2], &y)) {
      return RowError(towers_file, i, "bad tower row");
    }
    b.towers.push_back({id, {x, y}});
  }
  // Sanity: trajectory paths must reference valid segments.
  const char* split_names[] = {"train", "test"};
  int split_index = 0;
  for (const auto* split : {&b.train, &b.test}) {
    for (size_t ti = 0; ti < split->size(); ++ti) {
      for (network::SegmentId sid : (*split)[ti].truth_path) {
        if (sid < 0 || sid >= b.net.num_segments()) {
          return core::Status::InvalidArgument(core::StrFormat(
              "%s_%s.csv.paths: trajectory %zu references segment %d outside "
              "the network (%d segments)",
              prefix.c_str(), split_names[split_index], ti, sid,
              b.net.num_segments()));
        }
      }
    }
    ++split_index;
  }
  return b;
}

}  // namespace lhmm::io
