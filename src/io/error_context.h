#ifndef LHMM_IO_ERROR_CONTEXT_H_
#define LHMM_IO_ERROR_CONTEXT_H_

#include <string>

#include "core/status.h"
#include "core/strings.h"

namespace lhmm::io {

/// Formats a loader error pointing at the exact file and line. CSV data row
/// `row` is physical line row + 1 (line 1 is the header), so the message can
/// be pasted straight into an editor's goto-line. Every io/ loader reports
/// corrupt input through these helpers — a truncated or mangled file must
/// name itself, never fail vaguely or load half a dataset silently.
inline core::Status RowError(const std::string& file, size_t row,
                             const std::string& what) {
  return core::Status::InvalidArgument(
      core::StrFormat("%s line %zu: %s", file.c_str(), row + 1, what.c_str()));
}

/// Same, for plain line-oriented (non-CSV) files: `line` is 1-based already.
inline core::Status LineError(const std::string& file, size_t line,
                              const std::string& what) {
  return core::Status::InvalidArgument(
      core::StrFormat("%s line %zu: %s", file.c_str(), line, what.c_str()));
}

/// Same, for binary files where the natural coordinate is a byte offset
/// (journal segments): names the file and the exact offset of the problem.
inline core::Status OffsetError(const std::string& file, int64_t offset,
                                const std::string& what) {
  return core::Status::InvalidArgument(
      core::StrFormat("%s offset %lld: %s", file.c_str(),
                      static_cast<long long>(offset), what.c_str()));
}

/// A file that exists but has no header row is truncated, not empty data.
inline core::Status EmptyFileError(const std::string& file) {
  return core::Status::InvalidArgument(
      file + ": empty or truncated (header row missing)");
}

}  // namespace lhmm::io

#endif  // LHMM_IO_ERROR_CONTEXT_H_
