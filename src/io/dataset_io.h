#ifndef LHMM_IO_DATASET_IO_H_
#define LHMM_IO_DATASET_IO_H_

#include <string>

#include "core/status.h"
#include "sim/dataset.h"

namespace lhmm::io {

/// A dataset loaded back from disk: the pieces a matcher/trainer needs
/// (network, towers, splits), without the simulator configuration.
struct DatasetBundle {
  network::RoadNetwork net;
  std::vector<sim::Tower> towers;
  std::vector<traj::MatchedTrajectory> train;
  std::vector<traj::MatchedTrajectory> test;
};

/// Writes a simulated dataset as a file bundle under `prefix`:
/// `<prefix>_nodes.csv`, `<prefix>_segments.csv` (network),
/// `<prefix>_towers.csv`, `<prefix>_train.csv[.paths]`,
/// `<prefix>_test.csv[.paths]`. The on-disk interchange format of the
/// `lhmm_cli` pipeline.
core::Status SaveDatasetBundle(const sim::Dataset& ds, const std::string& prefix);

/// Loads a bundle previously written by SaveDatasetBundle.
core::Result<DatasetBundle> LoadDatasetBundle(const std::string& prefix);

}  // namespace lhmm::io

#endif  // LHMM_IO_DATASET_IO_H_
