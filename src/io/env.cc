#include "io/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace lhmm::io {

namespace {

std::string ErrnoText(int err, const std::string& what) {
  return what + ": " + std::strerror(err);
}

/// A POSIX fd wrapper. Every raw syscall retries EINTR internally: an
/// interrupted write is not a failure, just an incomplete one — callers of
/// the Env interface only ever see real errors (injected EINTR storms from
/// FaultEnv bypass this loop on purpose, modelling syscall wrappers that
/// do *not* retry).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  core::Status Append(std::string_view data) override {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(errno, "write to " + path_ + " failed");
      }
      off += static_cast<size_t>(n);
    }
    return core::Status::Ok();
  }

  core::Status Sync() override {
    if (::fsync(fd_) != 0) {
      return ErrnoStatus(errno, "fsync of " + path_ + " failed");
    }
    return core::Status::Ok();
  }

  core::Status Close() override {
    if (fd_ < 0) return core::Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoStatus(errno, "close of " + path_ + " failed");
    }
    return core::Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  core::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    const int flags =
        O_WRONLY | O_CREAT | O_CLOEXEC | (append ? O_APPEND : O_TRUNC);
    int fd;
    do {
      fd = ::open(path.c_str(), flags, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return ErrnoStatus(errno, "cannot open " + path + " for writing");
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  core::Status Rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus(errno, "cannot rename " + from + " to " + to);
    }
    return core::Status::Ok();
  }

  core::Status Unlink(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus(errno, "cannot delete " + path);
    }
    return core::Status::Ok();
  }

  core::Status Truncate(const std::string& path, int64_t size) override {
    int rc;
    do {
      rc = ::truncate(path.c_str(), static_cast<off_t>(size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      return ErrnoStatus(errno, "cannot truncate " + path);
    }
    return core::Status::Ok();
  }

  core::Status SyncPath(const std::string& path) override {
    int fd;
    do {
      fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return ErrnoStatus(errno, "cannot open " + path + " for fsync");
    }
    const int rc = ::fsync(fd);
    const int err = errno;
    ::close(fd);
    if (rc != 0) {
      return ErrnoStatus(err, "fsync of " + path + " failed");
    }
    return core::Status::Ok();
  }

  core::Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return core::Status::IoError("cannot create directory " + path + ": " +
                                   ec.message());
    }
    return core::Status::Ok();
  }

  core::Result<DiskSpace> GetDiskSpace(const std::string& path) override {
    struct statvfs vfs;
    int rc;
    do {
      rc = ::statvfs(path.c_str(), &vfs);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      return ErrnoStatus(errno, "statvfs of " + path + " failed");
    }
    DiskSpace space;
    space.available_bytes = static_cast<int64_t>(vfs.f_bavail) *
                            static_cast<int64_t>(vfs.f_frsize);
    space.total_bytes = static_cast<int64_t>(vfs.f_blocks) *
                        static_cast<int64_t>(vfs.f_frsize);
    return space;
  }

  core::Result<int> AcceptFd(int listen_fd) override {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd >= 0) return fd;
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
      if (errno == EMFILE || errno == ENFILE) {
        return ErrnoStatus(errno, "accept failed");
      }
      return core::Status::Unavailable(ErrnoText(errno, "accept failed"));
    }
  }
};

/// FaultEnv's file handle: re-consults the rules on every Append/Sync so a
/// fault can be scheduled for the Nth write *through an already-open file*
/// (e.g. the journal write that lands right after a rotation).
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultEnv* env, std::unique_ptr<WritableFile> base,
                    std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  core::Status Append(std::string_view data) override {
    int64_t short_write = -1;
    const int err = env_->Draw(EnvOp::kWrite, path_, &short_write);
    if (err != 0) {
      if (short_write >= 0 &&
          short_write < static_cast<int64_t>(data.size())) {
        // Tear the write: the prefix really lands on disk, the rest never
        // does — exactly what ENOSPC halfway through a write leaves behind.
        (void)base_->Append(data.substr(0, static_cast<size_t>(short_write)));
      }
      return ErrnoStatus(err, "injected: write to " + path_ + " failed");
    }
    return base_->Append(data);
  }

  core::Status Sync() override {
    const int err = env_->Draw(EnvOp::kFsync, path_);
    if (err != 0) {
      return ErrnoStatus(err, "injected: fsync of " + path_ + " failed");
    }
    return base_->Sync();
  }

  core::Status Close() override { return base_->Close(); }

 private:
  FaultEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

/// splitmix64: the same finalizer FaultyRouter uses — decisions depend only
/// on the seeded key, never on shared RNG state.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

const char* EnvOpName(EnvOp op) {
  switch (op) {
    case EnvOp::kOpen: return "open";
    case EnvOp::kWrite: return "write";
    case EnvOp::kFsync: return "fsync";
    case EnvOp::kRename: return "rename";
    case EnvOp::kUnlink: return "unlink";
    case EnvOp::kTruncate: return "truncate";
    case EnvOp::kStatvfs: return "statvfs";
    case EnvOp::kAccept: return "accept";
  }
  return "unknown";
}

core::Status ErrnoStatus(int err, const std::string& what) {
  if (err == EMFILE || err == ENFILE) {
    return core::Status::ResourceExhausted(ErrnoText(err, what));
  }
  return core::Status::IoError(ErrnoText(err, what));
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

FaultEnv::FaultEnv(Env* base, uint64_t seed)
    : base_(base != nullptr ? base : Env::Default()), seed_(seed) {}

void FaultEnv::AddRule(const EnvFaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(rule);
  rule_matches_.push_back(0);
}

void FaultEnv::ClearRules() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  rule_matches_.clear();
}

int64_t FaultEnv::injected_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

int64_t FaultEnv::op_count(EnvOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_counts_[static_cast<int>(op)];
}

int FaultEnv::Draw(EnvOp op, const std::string& path, int64_t* short_write,
                   int64_t* free_override) {
  std::lock_guard<std::mutex> lock(mu_);
  ++op_counts_[static_cast<int>(op)];
  for (size_t r = 0; r < rules_.size(); ++r) {
    const EnvFaultRule& rule = rules_[r];
    if (rule.op != op) continue;
    if (!rule.path_substr.empty() &&
        path.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    const int64_t match = ++rule_matches_[r];
    bool fire;
    if (rule.rate > 0.0) {
      const uint64_t h =
          Mix64(seed_ ^ Mix64(static_cast<uint64_t>(r) * 0x10001u +
                              static_cast<uint64_t>(match)));
      fire = static_cast<double>(h >> 11) * 0x1.0p-53 < rule.rate;
    } else {
      fire = match >= rule.at_count &&
             (rule.repeat < 0 || match < rule.at_count + rule.repeat);
    }
    if (!fire) continue;
    ++injected_;
    if (short_write != nullptr) *short_write = rule.short_write_bytes;
    if (free_override != nullptr) *free_override = rule.free_bytes_override;
    return rule.fault_errno;
  }
  return 0;
}

core::Result<std::unique_ptr<WritableFile>> FaultEnv::NewWritableFile(
    const std::string& path, bool append) {
  const int err = Draw(EnvOp::kOpen, path);
  if (err != 0) {
    return ErrnoStatus(err, "injected: cannot open " + path + " for writing");
  }
  core::Result<std::unique_ptr<WritableFile>> base =
      base_->NewWritableFile(path, append);
  if (!base.ok()) return base;
  return std::unique_ptr<WritableFile>(std::make_unique<FaultWritableFile>(
      this, std::move(*base), path));
}

core::Status FaultEnv::Rename(const std::string& from, const std::string& to) {
  const int err = Draw(EnvOp::kRename, to);
  if (err != 0) {
    return ErrnoStatus(err,
                       "injected: cannot rename " + from + " to " + to);
  }
  return base_->Rename(from, to);
}

core::Status FaultEnv::Unlink(const std::string& path) {
  const int err = Draw(EnvOp::kUnlink, path);
  if (err != 0) {
    return ErrnoStatus(err, "injected: cannot delete " + path);
  }
  return base_->Unlink(path);
}

core::Status FaultEnv::Truncate(const std::string& path, int64_t size) {
  const int err = Draw(EnvOp::kTruncate, path);
  if (err != 0) {
    return ErrnoStatus(err, "injected: cannot truncate " + path);
  }
  return base_->Truncate(path, size);
}

core::Status FaultEnv::SyncPath(const std::string& path) {
  const int err = Draw(EnvOp::kFsync, path);
  if (err != 0) {
    return ErrnoStatus(err, "injected: fsync of " + path + " failed");
  }
  return base_->SyncPath(path);
}

core::Status FaultEnv::CreateDirs(const std::string& path) {
  const int err = Draw(EnvOp::kOpen, path);
  if (err != 0) {
    return ErrnoStatus(err, "injected: cannot create directory " + path);
  }
  return base_->CreateDirs(path);
}

core::Result<DiskSpace> FaultEnv::GetDiskSpace(const std::string& path) {
  int64_t free_override = -1;
  const int err = Draw(EnvOp::kStatvfs, path, nullptr, &free_override);
  if (err != 0) {
    if (free_override >= 0) {
      // The rule asked for a *successful* call reporting a fixed free-space
      // figure — the deterministic way to script DiskGuard transitions.
      core::Result<DiskSpace> base = base_->GetDiskSpace(path);
      DiskSpace space;
      space.total_bytes = base.ok() ? base->total_bytes : free_override;
      space.available_bytes = free_override;
      return space;
    }
    return ErrnoStatus(err, "injected: statvfs of " + path + " failed");
  }
  return base_->GetDiskSpace(path);
}

core::Result<int> FaultEnv::AcceptFd(int listen_fd) {
  const int err = Draw(EnvOp::kAccept, "");
  if (err != 0) {
    return ErrnoStatus(err, "injected: accept failed");
  }
  return base_->AcceptFd(listen_fd);
}

}  // namespace lhmm::io
