#ifndef LHMM_IO_ENV_H_
#define LHMM_IO_ENV_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace lhmm::io {

/// Free/total space on the filesystem holding a path (statvfs). `available`
/// is what an unprivileged writer can actually use (f_bavail), which is the
/// number a disk-full watermark must watch — root-reserved blocks do not
/// save a server running as a normal user.
struct DiskSpace {
  int64_t available_bytes = 0;
  int64_t total_bytes = 0;
};

/// An open file handle for writing. Append/Sync report failures through
/// Status instead of crashing or silently shortening; Close is idempotent
/// and implied by destruction (destruction never reports errors — callers
/// that care about the close result must call Close explicitly).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual core::Status Append(std::string_view data) = 0;
  /// fsync. A failed Sync means the kernel may already have DROPPED the
  /// dirty pages (fsyncgate): the caller must not retry Sync and claim
  /// durability — the only safe reactions are to re-write the data
  /// elsewhere or to stop claiming it is durable.
  virtual core::Status Sync() = 0;
  virtual core::Status Close() = 0;
};

/// The syscall boundary of every durable write path (journal, snapshots,
/// store publish, CH persistence) and of the accept loop. Production uses
/// the process-wide PosixEnv singleton from Env::Default(); tests swap in a
/// FaultEnv to make any individual syscall fail on a deterministic
/// schedule — ENOSPC mid-rotation, a failed fsync, EMFILE on accept —
/// which is not reachable by corrupting bytes after the fact.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing: `append` true opens O_APPEND (creating if
  /// absent), false truncates/creates.
  virtual core::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) = 0;
  virtual core::Status Rename(const std::string& from,
                              const std::string& to) = 0;
  virtual core::Status Unlink(const std::string& path) = 0;
  virtual core::Status Truncate(const std::string& path, int64_t size) = 0;
  /// fsync of an existing file or directory by path.
  virtual core::Status SyncPath(const std::string& path) = 0;
  virtual core::Status CreateDirs(const std::string& path) = 0;
  virtual core::Result<DiskSpace> GetDiskSpace(const std::string& path) = 0;
  /// accept(2) on a listening socket. Returns the new fd; -1 means the
  /// backlog is drained (EAGAIN/EWOULDBLOCK — not an error). EMFILE/ENFILE
  /// surface as kResourceExhausted so the server can run its reserve-fd
  /// shed; other errno values (ECONNABORTED, ...) surface as kUnavailable.
  virtual core::Result<int> AcceptFd(int listen_fd) = 0;

  /// The process-wide PosixEnv.
  static Env* Default();
};

/// Syscall classes a FaultEnv rule can target.
enum class EnvOp {
  kOpen = 0,
  kWrite,
  kFsync,
  kRename,
  kUnlink,
  kTruncate,
  kStatvfs,
  kAccept,
};
constexpr int kNumEnvOps = 8;

const char* EnvOpName(EnvOp op);

/// One deterministic fault: "the Nth matching call to <op> on a path
/// containing <path_substr> fails with <fault_errno>". Matching calls are
/// counted per rule (1-based); the rule fires on calls numbered
/// [at_count, at_count + repeat) — repeat < 0 means forever. Alternatively
/// `rate` > 0 arms the rule on a pure hash of (seed, rule, match counter),
/// mirroring network::FaultyRouter: the same seed always fails the same
/// calls, with no RNG state shared between rules or threads.
struct EnvFaultRule {
  EnvOp op = EnvOp::kWrite;
  std::string path_substr;  ///< Empty matches every path (kAccept has none).
  int64_t at_count = 1;
  int64_t repeat = 1;
  double rate = 0.0;
  int fault_errno = 28;  ///< ENOSPC. Also EDQUOT/EMFILE/EIO/EINTR/...
  /// kWrite only: write this many bytes for real, then fail — a short write
  /// torn by the fault, the on-disk signature of ENOSPC mid-append.
  int64_t short_write_bytes = -1;
  /// kStatvfs only: the call *succeeds* but reports this many free bytes,
  /// so DiskGuard watermark transitions can be scheduled exactly.
  int64_t free_bytes_override = -1;
};

/// An Env decorator that injects the faults described by its rules and
/// forwards everything else to a base Env. Deterministic: every decision is
/// a pure function of (seed, rules, per-rule match counters); thread-safe so
/// the accept loop and the producer thread can share one instance.
class FaultEnv : public Env {
 public:
  explicit FaultEnv(Env* base = nullptr, uint64_t seed = 1);

  void AddRule(const EnvFaultRule& rule);
  void ClearRules();

  /// Total faults injected (all rules).
  int64_t injected_faults() const;
  /// Calls seen for one op class (faulted or not).
  int64_t op_count(EnvOp op) const;

  core::Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override;
  core::Status Rename(const std::string& from, const std::string& to) override;
  core::Status Unlink(const std::string& path) override;
  core::Status Truncate(const std::string& path, int64_t size) override;
  core::Status SyncPath(const std::string& path) override;
  core::Status CreateDirs(const std::string& path) override;
  core::Result<DiskSpace> GetDiskSpace(const std::string& path) override;
  core::Result<int> AcceptFd(int listen_fd) override;

  /// Consults the rules for one syscall: returns 0 for "no fault", otherwise
  /// the errno to inject. `short_write` / `free_override` (when non-null)
  /// receive the matching rule's modifiers. Used internally by the decorated
  /// file handles; exposed so tests can step the deterministic schedule.
  int Draw(EnvOp op, const std::string& path, int64_t* short_write = nullptr,
           int64_t* free_override = nullptr);

 private:
  Env* base_;
  uint64_t seed_;
  mutable std::mutex mu_;
  std::vector<EnvFaultRule> rules_;
  std::vector<int64_t> rule_matches_;  ///< Per-rule matching-call counters.
  int64_t op_counts_[kNumEnvOps] = {};
  int64_t injected_ = 0;
};

/// Formats an injected or real errno as a typed Status: EMFILE/ENFILE →
/// kResourceExhausted (retryable after fds free), everything else kIoError.
core::Status ErrnoStatus(int err, const std::string& what);

}  // namespace lhmm::io

#endif  // LHMM_IO_ENV_H_
