#include "io/snapshot_io.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/logging.h"
#include "core/strings.h"
#include "io/durable_file.h"
#include "io/error_context.h"

namespace lhmm::io {

namespace {
constexpr char kMagic[] = "lhmm-snapshot";
}  // namespace

SnapshotWriter::SnapshotWriter(const std::string& kind, int version) {
  CHECK(kind.find(' ') == std::string::npos);
  CHECK_GE(version, 1);
  buf_ = core::StrFormat("%s %s %d\n", kMagic, kind.c_str(), version);
}

SnapshotWriter& SnapshotWriter::BeginLine(const std::string& key) {
  CHECK(!line_open_) << "previous line not ended";
  CHECK(!key.empty() && key.find(' ') == std::string::npos);
  buf_ += key;
  line_open_ = true;
  return *this;
}

SnapshotWriter& SnapshotWriter::AddInt(int64_t value) {
  CHECK(line_open_);
  buf_ += core::StrFormat(" %lld", static_cast<long long>(value));
  return *this;
}

SnapshotWriter& SnapshotWriter::AddDouble(double value) {
  CHECK(line_open_);
  buf_ += core::StrFormat(" %.17g", value);
  return *this;
}

SnapshotWriter& SnapshotWriter::AddTail(const std::string& text) {
  CHECK(line_open_);
  CHECK(text.find('\n') == std::string::npos);
  buf_ += ' ';
  buf_ += text;
  return *this;
}

void SnapshotWriter::EndLine() {
  CHECK(line_open_);
  buf_ += '\n';
  line_open_ = false;
}

core::Status SnapshotWriter::WriteFile(const std::string& path, bool durable,
                                       Env* env) const {
  CHECK(!line_open_) << "last line not ended";
  // write-temp -> fsync -> rename -> fsync(dir): a crash at any point leaves
  // either the previous snapshot or the complete new one, never a torn file.
  return AtomicWriteFile(env, path, buf_, durable);
}

core::Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                                  const std::string& kind,
                                                  int max_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return core::Status::IoError("cannot open " + path);
  }
  SnapshotReader r;
  r.source_ = path;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    r.lines_.push_back(std::move(line));
  }
  if (r.lines_.empty()) {
    return EmptyFileError(path);
  }
  // Header: "lhmm-snapshot <kind> <version>".
  std::istringstream header(r.lines_[0]);
  std::string magic, got_kind;
  int version = 0;
  if (!(header >> magic >> got_kind >> version) || magic != kMagic) {
    return LineError(path, 1, "not a snapshot file (bad magic)");
  }
  if (got_kind != kind) {
    return LineError(path, 1,
                     "snapshot kind is '" + got_kind + "', expected '" + kind + "'");
  }
  if (version < 1 || version > max_version) {
    return LineError(path, 1,
                     core::StrFormat("unsupported snapshot version %d (max %d)",
                                     version, max_version));
  }
  r.version_ = version;
  r.index_ = 0;  // NextLine() starts after the header.
  return r;
}

bool SnapshotReader::NextLine() {
  size_t i = started_ ? index_ + 1 : 1;
  started_ = true;
  while (i < lines_.size() && lines_[i].empty()) ++i;
  if (i >= lines_.size()) {
    index_ = lines_.size();
    key_.clear();
    rest_.clear();
    return false;
  }
  index_ = i;
  const std::string& l = lines_[i];
  const size_t space = l.find(' ');
  if (space == std::string::npos) {
    key_ = l;
    rest_.clear();
  } else {
    key_ = l.substr(0, space);
    rest_ = l.substr(space + 1);
  }
  return true;
}

core::Status SnapshotReader::Error(const std::string& what) const {
  return LineError(source_, index_ + 1, what);
}

core::Result<std::string> SnapshotReader::TakeToken() {
  if (rest_.empty()) {
    return Error("truncated line: field missing after '" + key_ + "'");
  }
  const size_t space = rest_.find(' ');
  std::string token;
  if (space == std::string::npos) {
    token = std::move(rest_);
    rest_.clear();
  } else {
    token = rest_.substr(0, space);
    rest_.erase(0, space + 1);
  }
  return token;
}

core::Result<int64_t> SnapshotReader::TakeInt() {
  core::Result<std::string> token = TakeToken();
  if (!token.ok()) return token.status();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(token->c_str(), &end, 10);
  if (errno != 0 || end == token->c_str() || *end != '\0') {
    return Error("expected an integer, got '" + *token + "'");
  }
  return static_cast<int64_t>(v);
}

core::Result<double> SnapshotReader::TakeDouble() {
  core::Result<std::string> token = TakeToken();
  if (!token.ok()) return token.status();
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token->c_str(), &end);
  if (end == token->c_str() || *end != '\0') {
    return Error("expected a number, got '" + *token + "'");
  }
  return v;
}

std::string SnapshotReader::TakeTail() {
  std::string tail = std::move(rest_);
  rest_.clear();
  return tail;
}

core::Status SnapshotReader::ExpectLineEnd() {
  if (!rest_.empty()) {
    return Error("trailing garbage: '" + rest_ + "'");
  }
  return core::Status::Ok();
}

}  // namespace lhmm::io
