#include "io/network_io.h"

#include <fstream>

#include "core/csv.h"
#include "core/strings.h"
#include "io/error_context.h"

namespace lhmm::io {

namespace {

std::string EncodePolyline(const geo::Polyline& line) {
  std::string out;
  for (int i = 0; i < line.size(); ++i) {
    if (i > 0) out += ';';
    out += core::StrFormat("%.3f %.3f", line[i].x, line[i].y);
  }
  return out;
}

core::Result<std::vector<geo::Point>> DecodePolyline(const std::string& text) {
  std::vector<geo::Point> pts;
  for (const std::string& pair : core::StrSplit(text, ';')) {
    const auto xy = core::StrSplit(std::string(core::StrTrim(pair)), ' ');
    if (xy.size() != 2) {
      return core::Status::InvalidArgument("bad polyline vertex: " + pair);
    }
    double x = 0.0;
    double y = 0.0;
    if (!core::ParseDouble(xy[0], &x) || !core::ParseDouble(xy[1], &y)) {
      return core::Status::InvalidArgument("bad polyline number: " + pair);
    }
    pts.push_back({x, y});
  }
  if (pts.size() < 2) {
    return core::Status::InvalidArgument("polyline needs two vertices");
  }
  return pts;
}

}  // namespace

core::Status SaveNetworkCsv(const network::RoadNetwork& net,
                            const std::string& prefix) {
  core::CsvWriter nodes(prefix + "_nodes.csv");
  nodes.AddRow({"id", "x", "y"});
  for (network::NodeId v = 0; v < net.num_nodes(); ++v) {
    nodes.AddRow({core::StrFormat("%d", v),
                  core::StrFormat("%.3f", net.node(v).pos.x),
                  core::StrFormat("%.3f", net.node(v).pos.y)});
  }
  LHMM_RETURN_IF_ERROR(nodes.Flush());

  core::CsvWriter segs(prefix + "_segments.csv");
  segs.AddRow({"id", "from", "to", "length", "speed_limit", "level", "reverse",
               "polyline"});
  for (const network::RoadSegment& seg : net.segments()) {
    segs.AddRow({core::StrFormat("%d", seg.id), core::StrFormat("%d", seg.from),
                 core::StrFormat("%d", seg.to),
                 core::StrFormat("%.3f", seg.length),
                 core::StrFormat("%.2f", seg.speed_limit),
                 core::StrFormat("%d", static_cast<int>(seg.level)),
                 core::StrFormat("%d", seg.reverse), EncodePolyline(seg.geometry)});
  }
  return segs.Flush();
}

core::Result<network::RoadNetwork> LoadNetworkCsv(const std::string& prefix) {
  const std::string nodes_file = prefix + "_nodes.csv";
  const std::string segs_file = prefix + "_segments.csv";
  const auto node_rows = core::ReadCsv(nodes_file);
  if (!node_rows.ok()) return node_rows.status();
  const auto seg_rows = core::ReadCsv(segs_file);
  if (!seg_rows.ok()) return seg_rows.status();
  if (node_rows->empty()) return EmptyFileError(nodes_file);
  if (seg_rows->empty()) return EmptyFileError(segs_file);

  network::RoadNetwork net;
  for (size_t i = 1; i < node_rows->size(); ++i) {
    const auto& row = (*node_rows)[i];
    if (row.size() < 3) {
      return RowError(nodes_file, i,
                      core::StrFormat("expected 3 columns, got %zu", row.size()));
    }
    double x = 0.0;
    double y = 0.0;
    if (!core::ParseDouble(row[1], &x) || !core::ParseDouble(row[2], &y)) {
      return RowError(nodes_file, i, "bad node coordinates");
    }
    net.AddNode({x, y});
  }

  // First pass adds segments; reverse links are validated against the file's
  // ids, which must match insertion order.
  std::vector<network::SegmentId> reverse_of;
  for (size_t i = 1; i < seg_rows->size(); ++i) {
    const auto& row = (*seg_rows)[i];
    if (row.size() < 8) {
      return RowError(segs_file, i,
                      core::StrFormat("expected 8 columns, got %zu", row.size()));
    }
    int from = 0;
    int to = 0;
    int level = 0;
    int reverse = -1;
    double speed = 0.0;
    if (!core::ParseInt(row[1], &from) || !core::ParseInt(row[2], &to) ||
        !core::ParseDouble(row[4], &speed) || !core::ParseInt(row[5], &level) ||
        !core::ParseInt(row[6], &reverse)) {
      return RowError(segs_file, i, "bad segment fields");
    }
    if (from < 0 || from >= net.num_nodes() || to < 0 || to >= net.num_nodes()) {
      return RowError(segs_file, i,
                      core::StrFormat("references unknown nodes %d -> %d "
                                      "(network has %d)",
                                      from, to, net.num_nodes()));
    }
    auto pts = DecodePolyline(row[7]);
    if (!pts.ok()) return RowError(segs_file, i, pts.status().message());
    net.AddSegment(from, to, geo::Polyline(std::move(*pts)), speed,
                   static_cast<network::RoadLevel>(level));
    reverse_of.push_back(reverse);
  }
  // Stitch reverse twins through the public two-way construction invariant:
  // rebuild is not possible post hoc, so validate only.
  for (size_t i = 0; i < reverse_of.size(); ++i) {
    const network::SegmentId rev = reverse_of[i];
    if (rev == network::kInvalidSegment) continue;
    if (rev < 0 || rev >= net.num_segments()) {
      return RowError(segs_file, i + 1,
                      core::StrFormat("bad reverse id %d", rev));
    }
    const auto& a = net.segment(static_cast<network::SegmentId>(i));
    const auto& b = net.segment(rev);
    if (a.from != b.to || a.to != b.from) {
      return RowError(segs_file, i + 1,
                      core::StrFormat("reverse id %d is not its twin", rev));
    }
    net.SetReverse(static_cast<network::SegmentId>(i), rev);
  }
  LHMM_RETURN_IF_ERROR(net.Validate());
  return net;
}

core::Status ExportNetworkGeoJson(const network::RoadNetwork& net,
                                  const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return core::Status::IoError("cannot open " + path);
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const network::RoadSegment& seg : net.segments()) {
    if (!first) out << ",";
    first = false;
    out << "{\"type\":\"Feature\",\"properties\":{\"id\":" << seg.id
        << ",\"level\":" << static_cast<int>(seg.level)
        << ",\"speed_limit\":" << seg.speed_limit
        << "},\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
    for (int i = 0; i < seg.geometry.size(); ++i) {
      if (i > 0) out << ",";
      out << core::StrFormat("[%.3f,%.3f]", seg.geometry[i].x, seg.geometry[i].y);
    }
    out << "]}}";
  }
  out << "]}";
  if (!out.good()) return core::Status::IoError("write failed for " + path);
  return core::Status::Ok();
}

}  // namespace lhmm::io
