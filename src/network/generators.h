#ifndef LHMM_NETWORK_GENERATORS_H_
#define LHMM_NETWORK_GENERATORS_H_

#include "core/rng.h"
#include "network/road_network.h"

namespace lhmm::network {

/// Parameters of the synthetic urban network generator. The generator builds
/// a jittered grid whose block size grows with distance from the city center
/// (dense urban core, sparse suburbs), drops a fraction of edges to create
/// irregular topology, marks periodic rows/columns as arterials, and keeps
/// only the largest strongly connected component.
struct CityNetworkConfig {
  double width = 9000.0;        ///< Extent along x, meters.
  double height = 7000.0;       ///< Extent along y, meters.
  double core_spacing = 280.0;  ///< Block size at the center, meters.
  double edge_spacing = 650.0;  ///< Block size at the outskirts, meters.
  double jitter_frac = 0.22;    ///< Node jitter as a fraction of local spacing.
  double drop_prob = 0.12;      ///< Probability of deleting a two-way edge.
  int arterial_period = 4;      ///< Every n-th grid line is an arterial.
  double local_speed = 11.0;    ///< Local street speed limit, m/s (~40 km/h).
  double arterial_speed = 19.5; ///< Arterial speed limit, m/s (~70 km/h).
  uint64_t seed = 7;
};

/// Generates a synthetic urban road network per `config`.
RoadNetwork GenerateCityNetwork(const CityNetworkConfig& config);

/// Generates a plain `cols` x `rows` two-way grid with uniform `spacing`;
/// used heavily by unit tests where hand-checkable geometry matters.
RoadNetwork GenerateGridNetwork(int cols, int rows, double spacing,
                                double speed_limit = 13.9);

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_GENERATORS_H_
