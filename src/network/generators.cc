#include "network/generators.h"

#include <cmath>
#include <vector>

#include "core/logging.h"

namespace lhmm::network {

namespace {

/// Builds monotone grid-line coordinates covering [-extent/2, extent/2] whose
/// spacing grows from `core` at the center to `edge` at the boundary.
std::vector<double> GridLines(double extent, double core, double edge) {
  std::vector<double> positive = {0.0};
  double x = 0.0;
  while (x < extent / 2.0) {
    const double r = std::min(1.0, x / (extent / 2.0));
    const double s = core + (edge - core) * std::pow(r, 1.5);
    x += s;
    positive.push_back(x);
  }
  std::vector<double> lines;
  for (size_t i = positive.size(); i-- > 1;) lines.push_back(-positive[i]);
  for (double v : positive) lines.push_back(v);
  return lines;
}

}  // namespace

RoadNetwork GenerateCityNetwork(const CityNetworkConfig& config) {
  CHECK_GT(config.core_spacing, 0.0);
  CHECK_GE(config.edge_spacing, config.core_spacing);
  core::Rng rng(config.seed);

  const std::vector<double> xs =
      GridLines(config.width, config.core_spacing, config.edge_spacing);
  const std::vector<double> ys =
      GridLines(config.height, config.core_spacing, config.edge_spacing);
  const int cols = static_cast<int>(xs.size());
  const int rows = static_cast<int>(ys.size());
  const int center_col = cols / 2;
  const int center_row = rows / 2;

  RoadNetwork net;
  std::vector<NodeId> grid(static_cast<size_t>(cols) * rows, kInvalidNode);
  auto at = [&](int c, int r) -> NodeId& {
    return grid[static_cast<size_t>(r) * cols + c];
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double local_x =
          c + 1 < cols ? xs[c + 1] - xs[c] : xs[c] - xs[c - 1];
      const double local_y =
          r + 1 < rows ? ys[r + 1] - ys[r] : ys[r] - ys[r - 1];
      const double jx = rng.Uniform(-config.jitter_frac, config.jitter_frac) * local_x;
      const double jy = rng.Uniform(-config.jitter_frac, config.jitter_frac) * local_y;
      at(c, r) = net.AddNode({xs[c] + jx, ys[r] + jy});
    }
  }

  auto is_arterial_col = [&](int c) {
    return config.arterial_period > 0 &&
           std::abs(c - center_col) % config.arterial_period == 0;
  };
  auto is_arterial_row = [&](int r) {
    return config.arterial_period > 0 &&
           std::abs(r - center_row) % config.arterial_period == 0;
  };

  auto add_edge = [&](NodeId a, NodeId b, bool arterial) {
    const double drop = arterial ? config.drop_prob / 3.0 : config.drop_prob;
    if (rng.Bernoulli(drop)) return;
    const double speed = arterial ? config.arterial_speed : config.local_speed;
    const RoadLevel level = arterial ? RoadLevel::kArterial : RoadLevel::kLocal;
    net.AddTwoWay(a, b, speed, level);
  };

  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) add_edge(at(c, r), at(c + 1, r), is_arterial_row(r));
      if (r + 1 < rows) add_edge(at(c, r), at(c, r + 1), is_arterial_col(c));
    }
  }

  // A sprinkle of diagonal connectors in the core makes the topology less
  // regular, like real inner-city street patterns.
  const int core_cols = std::max(2, cols / 4);
  const int core_rows = std::max(2, rows / 4);
  for (int r = center_row - core_rows; r < center_row + core_rows; ++r) {
    for (int c = center_col - core_cols; c < center_col + core_cols; ++c) {
      if (r < 0 || c < 0 || r + 1 >= rows || c + 1 >= cols) continue;
      if (rng.Bernoulli(0.06)) {
        net.AddTwoWay(at(c, r), at(c + 1, r + 1), config.local_speed,
                      RoadLevel::kCollector);
      }
    }
  }

  const std::vector<NodeId> scc = net.LargestStronglyConnectedComponent();
  RoadNetwork pruned = net.InducedSubnetwork(scc);
  CHECK_OK(pruned.Validate());
  return pruned;
}

RoadNetwork GenerateGridNetwork(int cols, int rows, double spacing,
                                double speed_limit) {
  CHECK_GE(cols, 2);
  CHECK_GE(rows, 2);
  RoadNetwork net;
  std::vector<NodeId> grid(static_cast<size_t>(cols) * rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      grid[static_cast<size_t>(r) * cols + c] =
          net.AddNode({c * spacing, r * spacing});
    }
  }
  auto at = [&](int c, int r) { return grid[static_cast<size_t>(r) * cols + c]; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) net.AddTwoWay(at(c, r), at(c + 1, r), speed_limit,
                                      RoadLevel::kLocal);
      if (r + 1 < rows) net.AddTwoWay(at(c, r), at(c, r + 1), speed_limit,
                                      RoadLevel::kLocal);
    }
  }
  CHECK_OK(net.Validate());
  return net;
}

}  // namespace lhmm::network
