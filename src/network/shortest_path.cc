#include "network/shortest_path.h"

#include <algorithm>
#include <queue>

#include "core/logging.h"

namespace lhmm::network {

SegmentRouter::SegmentRouter(const RoadNetwork* net) : net_(net) {
  CHECK(net != nullptr);
  dist_.assign(net->num_nodes(), 0.0);
  parent_seg_.assign(net->num_nodes(), kInvalidSegment);
  stamp_.assign(net->num_nodes(), 0);
  settled_stamp_.assign(net->num_nodes(), 0);
}

void SegmentRouter::RunDijkstra(NodeId source, const std::vector<NodeId>& target_nodes,
                                double max_length, const RoutePrune* prune) {
  ++current_stamp_;
  targets_scratch_ = target_nodes;
  std::sort(targets_scratch_.begin(), targets_scratch_.end());
  targets_scratch_.erase(
      std::unique(targets_scratch_.begin(), targets_scratch_.end()),
      targets_scratch_.end());
  int remaining = static_cast<int>(targets_scratch_.size());

  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist_[source] = 0.0;
  parent_seg_[source] = kInvalidSegment;
  stamp_[source] = current_stamp_;
  heap.push({0.0, source});

  while (!heap.empty() && remaining > 0) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > max_length) break;
    if (settled_stamp_[v] == current_stamp_) continue;
    settled_stamp_[v] = current_stamp_;
    if (std::binary_search(targets_scratch_.begin(), targets_scratch_.end(), v)) {
      --remaining;
    }
    for (SegmentId sid : net_->OutSegments(v)) {
      const RoadSegment& seg = net_->segment(sid);
      const double nd = d + seg.length;
      if (nd > max_length) continue;
      if (stamp_[seg.to] != current_stamp_ || nd < dist_[seg.to]) {
        // Pruning only needs to run when a label would actually change;
        // an excluded node never gets a label, so the improvement test
        // above cannot pass for it spuriously.
        if (prune != nullptr && prune->Excluded(seg.to, nd)) continue;
        stamp_[seg.to] = current_stamp_;
        dist_[seg.to] = nd;
        parent_seg_[seg.to] = sid;
        heap.push({nd, seg.to});
      }
    }
  }
}

std::vector<SegmentId> SegmentRouter::BacktrackSegments(NodeId node) const {
  std::vector<SegmentId> out;
  NodeId v = node;
  while (parent_seg_[v] != kInvalidSegment) {
    const SegmentId sid = parent_seg_[v];
    out.push_back(sid);
    v = net_->segment(sid).from;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::optional<Route> SegmentRouter::Route1(SegmentId from, SegmentId to,
                                           double max_length) {
  std::vector<std::optional<Route>> routes = RouteMany(from, {to}, max_length);
  return std::move(routes[0]);
}

std::vector<std::optional<Route>> SegmentRouter::RouteMany(
    SegmentId from, const std::vector<SegmentId>& targets, double max_length) {
  return RouteManyImpl(from, targets, max_length, nullptr);
}

std::vector<std::optional<Route>> SegmentRouter::RouteManyImpl(
    SegmentId from, const std::vector<SegmentId>& targets, double max_length,
    const RoutePrune* prune) {
  std::vector<std::optional<Route>> out(targets.size());
  const RoadSegment& src = net_->segment(from);

  std::vector<NodeId> target_nodes;
  target_nodes.reserve(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] == from) continue;
    target_nodes.push_back(net_->segment(targets[i]).from);
  }
  if (!target_nodes.empty()) {
    RunDijkstra(src.to, target_nodes, max_length, prune);
  }

  for (size_t i = 0; i < targets.size(); ++i) {
    const SegmentId to = targets[i];
    if (to == from) {
      out[i] = Route{0.0, {from}};
      continue;
    }
    const NodeId goal = net_->segment(to).from;
    // Only settled labels are final shortest distances.
    if (settled_stamp_[goal] != current_stamp_) continue;
    Route route;
    route.length = dist_[goal];
    route.segments.push_back(from);
    std::vector<SegmentId> mid = BacktrackSegments(goal);
    route.segments.insert(route.segments.end(), mid.begin(), mid.end());
    route.segments.push_back(to);
    out[i] = std::move(route);
  }
  return out;
}

double SegmentRouter::NodeDistance(NodeId from, NodeId to, double max_length) {
  return NodeDistanceImpl(from, to, max_length, nullptr);
}

double SegmentRouter::NodeDistanceImpl(NodeId from, NodeId to,
                                       double max_length,
                                       const RoutePrune* prune) {
  if (from == to) return 0.0;
  RunDijkstra(from, {to}, max_length, prune);
  if (settled_stamp_[to] != current_stamp_) return -1.0;
  return dist_[to];
}

double RouteLengthOr(SegmentRouter* router, SegmentId from, SegmentId to,
                     double max_length, double fallback) {
  std::optional<Route> route = router->Route1(from, to, max_length);
  return route.has_value() ? route->length : fallback;
}

}  // namespace lhmm::network
