#include "network/ch_router.h"

#include <algorithm>
#include <limits>

#include "core/logging.h"

namespace lhmm::network {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Corridor slack: must dominate the floating-point drift between a
// distance accumulated through shortcut sums and the same distance
// accumulated edge by edge. Road-scale doubles carry ~1e-10 m of drift per
// kilometer; a millimeter-scale absolute term plus a 1e-9 relative term is
// orders of magnitude above that, while widening the corridor by a
// physically meaningless amount.
constexpr double kRelSlack = 1e-9;
constexpr double kAbsSlack = 1e-2;

double CutoffFor(double bound) { return bound * (1.0 + kRelSlack) + kAbsSlack; }

}  // namespace

bool ParseRouterBackend(const std::string& text, RouterBackend* out) {
  if (text == "dijkstra") {
    *out = RouterBackend::kDijkstra;
    return true;
  }
  if (text == "ch") {
    *out = RouterBackend::kCH;
    return true;
  }
  return false;
}

const char* RouterBackendName(RouterBackend backend) {
  switch (backend) {
    case RouterBackend::kDijkstra:
      return "dijkstra";
    case RouterBackend::kCH:
      return "ch";
  }
  return "unknown";
}

CHRouter::CHRouter(const RoadNetwork* net, const CHGraph* ch)
    : SegmentRouter(net), ch_(ch) {
  CHECK(ch != nullptr);
  CHECK(ch->num_nodes == net->num_nodes());
  CHECK(ch->fingerprint == CHGraph::NetworkFingerprint(*net));
  CHECK(!ch->nodes_by_rank_desc.empty() || ch->num_nodes == 0);
  const size_t n = static_cast<size_t>(ch->num_nodes);
  bt_.assign(n, kInf);
  bt_stamp_.assign(n, 0);
  visit_stamp_.assign(n, 0);
  reach_.assign(n, kInf);
  reach_stamp_.assign(n, 0);
}

void CHRouter::BackwardUpwardSearch(const std::vector<NodeId>& goals,
                                    double cutoff) {
  ++bt_stamp_cur_;
  // Phase 1: cursor DFS over the goal set's combined upward closure
  // (down-CSR edges traversed tail-ward strictly increase rank, so it is a
  // DAG and the reverse post-order of the DFS forest is a topological
  // order). Heap-free on purpose: both phases are tight linear array scans.
  ++visit_stamp_cur_;
  order_.clear();
  dfs_frames_.clear();
  for (NodeId g : goals) {
    if (visit_stamp_[g] == visit_stamp_cur_) continue;
    visit_stamp_[g] = visit_stamp_cur_;
    dfs_frames_.push_back({g, ch_->down_begin[g]});
    while (!dfs_frames_.empty()) {
      DfsFrame f = dfs_frames_.back();
      const int32_t end = ch_->down_begin[f.u + 1];
      bool pushed = false;
      while (f.i < end) {
        const NodeId t = ch_->down_tail[f.i];
        ++f.i;
        if (visit_stamp_[t] != visit_stamp_cur_) {
          visit_stamp_[t] = visit_stamp_cur_;
          dfs_frames_.back() = f;
          dfs_frames_.push_back({t, ch_->down_begin[t]});
          pushed = true;
          break;
        }
      }
      if (pushed) continue;
      order_.push_back(f.u);
      dfs_frames_.pop_back();
    }
  }
  // Phase 2: one multi-source push-relaxation pass in reverse post-order
  // computes bt(v) = exact distance to the *nearest* goal for every closure
  // node whose distance fits the cutoff (edges relax head -> tail, i.e.
  // along the topological order, so each label is final when read).
  for (NodeId v : order_) {
    bt_[v] = kInf;
    bt_stamp_[v] = bt_stamp_cur_;
  }
  for (NodeId g : goals) bt_[g] = 0.0;
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const NodeId v = *it;
    const double d = bt_[v];
    if (d == kInf) continue;
    for (int32_t i = ch_->down_begin[v]; i < ch_->down_begin[v + 1]; ++i) {
      const NodeId u = ch_->down_tail[i];
      const double nd = d + ch_->down_weight[i];
      if (nd <= cutoff && nd < bt_[u]) bt_[u] = nd;
    }
  }
}

double CHRouter::ReachOf(NodeId v) {
  if (reach_stamp_[v] == reach_stamp_cur_) return reach_[v];
  // Iterative post-order DFS with per-frame edge cursors: every upward edge
  // in the evaluated closure is walked a bounded number of times per
  // corridor, independent of how many queries share the memo. No duplicate
  // frames are possible: a frame's ancestors all have strictly lower rank
  // than its unmemoized children.
  reach_frames_.clear();
  reach_frames_.push_back(
      {v, ch_->up_begin[v],
       (bt_stamp_[v] == bt_stamp_cur_) ? bt_[v] : kInf});
  while (!reach_frames_.empty()) {
    ReachFrame f = reach_frames_.back();
    const int32_t end = ch_->up_begin[f.u + 1];
    bool pushed = false;
    while (f.i < end) {
      const NodeId x = ch_->up_head[f.i];
      if (reach_stamp_[x] == reach_stamp_cur_) {
        const double via = ch_->up_weight[f.i] + reach_[x];
        if (via < f.r) f.r = via;
        ++f.i;
      } else {
        // Suspend at this edge; the child's memo resolves it on resume.
        reach_frames_.back() = f;
        reach_frames_.push_back(
            {x, ch_->up_begin[x],
             (bt_stamp_[x] == bt_stamp_cur_) ? bt_[x] : kInf});
        pushed = true;
        break;
      }
    }
    if (pushed) continue;
    reach_[f.u] = f.r;
    reach_stamp_[f.u] = reach_stamp_cur_;
    reach_frames_.pop_back();
  }
  return reach_[v];
}

void CHRouter::EnsureCorridor(const std::vector<NodeId>& goals,
                              double cutoff) {
  if (corridor_valid_ && corridor_cutoff_ == cutoff &&
      corridor_goals_ == goals) {
    ++corridor_reuses_;
    return;
  }
  BackwardUpwardSearch(goals, cutoff);
  // Invalidate the reach memo. Reach values are cutoff-independent raw
  // minima, so every query sharing the corridor shares the memo even when
  // its own tightened cutoff differs.
  ++reach_stamp_cur_;
  if (goals.size() > 1) {
    // Multi-goal corridors (HMM columns: many sources share one goal set)
    // fill the memo eagerly — one relaxation pass in descending rank order
    // (up-edge heads outrank tails, so every upstream label is final when
    // read) costs O(V + E_up) once per corridor and turns every prune
    // check of every query into two array reads. Single-goal corridors
    // stay lazy: their pruned searches touch a thin tube around one route,
    // far smaller than the graph.
    for (NodeId v : ch_->nodes_by_rank_desc) {
      double r = (bt_stamp_[v] == bt_stamp_cur_) ? bt_[v] : kInf;
      for (int32_t i = ch_->up_begin[v]; i < ch_->up_begin[v + 1]; ++i) {
        const double via = ch_->up_weight[i] + reach_[ch_->up_head[i]];
        if (via < r) r = via;
      }
      reach_[v] = r;
      reach_stamp_[v] = reach_stamp_cur_;
    }
  }
  corridor_goals_ = goals;
  corridor_cutoff_ = cutoff;
  corridor_valid_ = true;
  ++corridor_builds_;
}

std::optional<Route> CHRouter::Route1(SegmentId from, SegmentId to,
                                      double max_length) {
  std::vector<std::optional<Route>> routes = RouteMany(from, {to}, max_length);
  return std::move(routes[0]);
}

std::vector<std::optional<Route>> CHRouter::RouteMany(
    SegmentId from, const std::vector<SegmentId>& targets, double max_length) {
  // Corridor goals cover every target, *including* a self-target the base
  // search would skip: a superset of the real goal set only shrinks reach
  // labels (less aggressive pruning), so it stays sound — and keeping the
  // goal set independent of `from` lets every predecessor in an HMM column
  // share one corridor instead of rebuilding it per source segment.
  bool any_non_self = false;
  goals_scratch_.clear();
  for (SegmentId t : targets) {
    if (t != from) any_non_self = true;
    goals_scratch_.push_back(network()->segment(t).from);
  }
  if (!any_non_self) {
    // Only self-targets: the base runs no search either.
    return RouteManyImpl(from, targets, max_length, nullptr);
  }
  std::sort(goals_scratch_.begin(), goals_scratch_.end());
  goals_scratch_.erase(
      std::unique(goals_scratch_.begin(), goals_scratch_.end()),
      goals_scratch_.end());

  const double cutoff = CutoffFor(max_length);
  const NodeId source = network()->segment(from).to;
  EnsureCorridor(goals_scratch_, cutoff);
  // reach(source) = the CH distance from the source to the *nearest* goal.
  const double est = ReachOf(source);
  if (est > cutoff) {
    // No goal has an up-then-down connection within bound + slack, so the
    // exact search could not settle any of them — return the same
    // all-nullopt answer it would compute, minus the search. Self-targets
    // resolve without a search, exactly as the base does.
    std::vector<std::optional<Route>> out(targets.size());
    for (size_t i = 0; i < targets.size(); ++i) {
      if (targets[i] == from) out[i] = Route{0.0, {from}};
    }
    return out;
  }
  // With a single goal, `est` estimates *the* answer (upper bound always,
  // exact up to fp drift when in bound — the Route1 path-expansion
  // pattern probes with bounds far above the answer), so the pruned
  // search can tighten from bound-scale to answer-scale. With several
  // goals the nearest-goal distance bounds nothing about the others.
  const double tight = goals_scratch_.size() == 1
                           ? std::min(cutoff, CutoffFor(est))
                           : cutoff;
  const RoutePrune prune = MakePrune(tight);
  return RouteManyImpl(from, targets, max_length, &prune);
}

double CHRouter::NodeDistance(NodeId from, NodeId to, double max_length) {
  if (from == to) return 0.0;
  const double cutoff = CutoffFor(max_length);
  goals_scratch_.assign(1, to);
  EnsureCorridor(goals_scratch_, cutoff);
  const double est = ReachOf(from);
  if (est > cutoff) return -1.0;
  const RoutePrune prune = MakePrune(std::min(cutoff, CutoffFor(est)));
  return NodeDistanceImpl(from, to, max_length, &prune);
}

}  // namespace lhmm::network
