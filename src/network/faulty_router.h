#ifndef LHMM_NETWORK_FAULTY_ROUTER_H_
#define LHMM_NETWORK_FAULTY_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "network/path_cache.h"

namespace lhmm::network {

/// Fault-injection knobs. Rates are probabilities in [0, 1].
struct FaultConfig {
  /// Fraction of (from, to) segment pairs whose route queries always fail
  /// (return nullopt), simulating a routing subsystem outage, a graph hole,
  /// or a timeout on that pair.
  double route_failure_rate = 0.0;
  /// Fraction of (from, to) pairs whose queries are delayed by
  /// `latency_micros` before answering — shakes up thread interleavings
  /// without changing any result.
  double latency_rate = 0.0;
  int latency_micros = 50;
  uint64_t seed = 1;
};

/// A CachedRouter that deterministically injects failures: it drops in
/// anywhere a CachedRouter* is accepted (UseSharedRouter, StreamEngineConfig,
/// hmm::Engine), so the whole matching stack can be exercised against a
/// misbehaving routing layer.
///
/// Fault decisions are a pure hash of (seed, from, to) — not of call order,
/// thread, or cache state — so a faulted pair fails on every query and
/// results stay byte-identical across thread counts and interleavings, which
/// keeps the determinism contracts testable under injected faults. Latency
/// injection sleeps but never alters an answer. Thread safe exactly like
/// CachedRouter; counters are atomic.
class FaultyRouter : public CachedRouter {
 public:
  /// Wraps an external SegmentRouter (must outlive this wrapper).
  FaultyRouter(SegmentRouter* router, const FaultConfig& config);

  /// Self-contained variant over `net`.
  FaultyRouter(const RoadNetwork* net, const FaultConfig& config);

  /// Self-contained variant whose cache misses route through a contraction
  /// hierarchy (see CachedRouter's CH constructor) — fault injection and the
  /// CH backend compose, since faults are decided before the lookup.
  FaultyRouter(const RoadNetwork* net, const CHGraph* ch,
               const FaultConfig& config);

  std::optional<Route> Route1(SegmentId from, SegmentId to,
                              double max_length) override;
  std::vector<std::optional<Route>> RouteMany(
      SegmentId from, const std::vector<SegmentId>& targets,
      double max_length) override;

  /// True when queries from -> to are configured to fail.
  bool IsFaulted(SegmentId from, SegmentId to) const;

  /// True when queries from -> to are configured to be delayed.
  bool IsDelayed(SegmentId from, SegmentId to) const;

  /// Total (from, to) lookups answered, failures injected into them, and
  /// latency delays served, since construction.
  int64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  int64_t injected_failures() const {
    return injected_failures_.load(std::memory_order_relaxed);
  }
  int64_t injected_delays() const {
    return injected_delays_.load(std::memory_order_relaxed);
  }

  const FaultConfig& fault_config() const { return config_; }

 private:
  /// Uniform [0, 1) draw fully determined by (seed, from, to, salt).
  double Draw(SegmentId from, SegmentId to, uint64_t salt) const;
  void MaybeDelay(SegmentId from, SegmentId to);

  FaultConfig config_;
  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> injected_failures_{0};
  std::atomic<int64_t> injected_delays_{0};
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_FAULTY_ROUTER_H_
