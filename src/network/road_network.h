#ifndef LHMM_NETWORK_ROAD_NETWORK_H_
#define LHMM_NETWORK_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "geo/polyline.h"

namespace lhmm::network {

using NodeId = int32_t;
using SegmentId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr SegmentId kInvalidSegment = -1;

/// An intersection or terminal point of the road network (Definition 3).
struct Node {
  NodeId id = kInvalidNode;
  geo::Point pos;
};

/// Functional class of a road, used by the simulator's speed model and by
/// baseline heuristics.
enum class RoadLevel { kArterial = 0, kCollector = 1, kLocal = 2 };

/// A directed road segment connecting two nodes (Definition 3). Two-way roads
/// are represented as a pair of segments that reference each other through
/// `reverse`.
struct RoadSegment {
  SegmentId id = kInvalidSegment;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  geo::Polyline geometry;             ///< From `from`'s position to `to`'s.
  double length = 0.0;                ///< Cached geometry length, meters.
  double speed_limit = 13.9;          ///< Meters per second.
  RoadLevel level = RoadLevel::kLocal;
  SegmentId reverse = kInvalidSegment;  ///< Opposite direction twin, if any.
};

/// A directed road network G<V, E>. Nodes and segments are identified by dense
/// integer ids, which downstream components (spatial index, routers, graph
/// learners) use as array indices.
class RoadNetwork {
 public:
  RoadNetwork() = default;

  // Movable but not copyable: downstream components hold pointers into it.
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;
  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;

  /// Adds a node at `pos` and returns its id.
  NodeId AddNode(const geo::Point& pos);

  /// Adds a directed segment with an explicit geometry whose endpoints must
  /// match the node positions. Returns its id.
  SegmentId AddSegment(NodeId from, NodeId to, geo::Polyline geometry,
                       double speed_limit, RoadLevel level);

  /// Adds a straight-line directed segment between two existing nodes.
  SegmentId AddSegment(NodeId from, NodeId to, double speed_limit, RoadLevel level);

  /// Adds both directions of a straight two-way road; the twins reference each
  /// other via `reverse`. Returns the forward segment id.
  SegmentId AddTwoWay(NodeId a, NodeId b, double speed_limit, RoadLevel level);

  /// Marks `seg` and `twin` as reverse twins (used by deserialization). The
  /// segments must connect the same nodes in opposite directions.
  void SetReverse(SegmentId seg, SegmentId twin);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_segments() const { return static_cast<int>(segments_.size()); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  const RoadSegment& segment(SegmentId id) const { return segments_[id]; }
  const std::vector<RoadSegment>& segments() const { return segments_; }

  /// Segments leaving `node`.
  const std::vector<SegmentId>& OutSegments(NodeId node) const {
    return out_segments_[node];
  }

  /// Segments entering `node`.
  const std::vector<SegmentId>& InSegments(NodeId node) const {
    return in_segments_[node];
  }

  /// Segments that can directly follow `seg` on a path (start at seg.to).
  const std::vector<SegmentId>& NextSegments(SegmentId seg) const {
    return out_segments_[segments_[seg].to];
  }

  /// Segments that can directly precede `seg` on a path (end at seg.from).
  const std::vector<SegmentId>& PrevSegments(SegmentId seg) const {
    return in_segments_[segments_[seg].from];
  }

  /// Returns true if `b` can directly follow `a` (shares the junction node).
  bool AreConsecutive(SegmentId a, SegmentId b) const {
    return segments_[a].to == segments_[b].from;
  }

  /// Bounding box of all node positions.
  const geo::BBox& Bounds() const { return bounds_; }

  /// Structural sanity check (endpoint consistency, geometry endpoints).
  core::Status Validate() const;

  /// Returns node ids of the largest strongly connected component.
  std::vector<NodeId> LargestStronglyConnectedComponent() const;

  /// Builds a new network restricted to `keep_nodes` (and segments whose both
  /// endpoints are kept), with densely renumbered ids.
  RoadNetwork InducedSubnetwork(const std::vector<NodeId>& keep_nodes) const;

 private:
  std::vector<Node> nodes_;
  std::vector<RoadSegment> segments_;
  std::vector<std::vector<SegmentId>> out_segments_;
  std::vector<std::vector<SegmentId>> in_segments_;
  geo::BBox bounds_;
};

/// Total length in meters of a path given as consecutive segment ids.
double PathLength(const RoadNetwork& net, const std::vector<SegmentId>& path);

/// Returns true if every consecutive pair in `path` is connected in `net`.
bool IsConnectedPath(const RoadNetwork& net, const std::vector<SegmentId>& path);

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_ROAD_NETWORK_H_
