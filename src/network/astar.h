#ifndef LHMM_NETWORK_ASTAR_H_
#define LHMM_NETWORK_ASTAR_H_

#include <optional>
#include <vector>

#include "network/road_network.h"
#include "network/shortest_path.h"

namespace lhmm::network {

/// A* router between road segments with the straight-line (Euclidean)
/// heuristic. Produces exactly the same routes as SegmentRouter (the
/// heuristic is admissible on a planar network whose segment lengths are at
/// least the straight-line node distance) but expands far fewer nodes on
/// point-to-point queries, which makes it the better choice for single-pair
/// routing (path expansion, shortcut legs); the plain Dijkstra remains better
/// for the one-to-many candidate-graph queries.
///
/// Keeps per-instance scratch buffers; reuse one instance, not thread safe.
class AStarRouter {
 public:
  /// The network must outlive the router.
  explicit AStarRouter(const RoadNetwork* net);

  /// Shortest route from `from` to `to` with connecting length at most
  /// `max_length`; nullopt when unreachable within the bound. Route semantics
  /// match SegmentRouter::Route1 exactly.
  std::optional<Route> Route1(SegmentId from, SegmentId to, double max_length);

  /// Nodes expanded by the last query (diagnostics / benchmarks).
  int last_expanded() const { return last_expanded_; }

 private:
  const RoadNetwork* net_;
  std::vector<double> g_;
  std::vector<SegmentId> parent_seg_;
  std::vector<int> stamp_;
  std::vector<int> settled_stamp_;
  int current_stamp_ = 0;
  int last_expanded_ = 0;
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_ASTAR_H_
