#ifndef LHMM_NETWORK_K_SHORTEST_H_
#define LHMM_NETWORK_K_SHORTEST_H_

#include <vector>

#include "network/road_network.h"
#include "network/shortest_path.h"

namespace lhmm::network {

/// Yen's algorithm for the K shortest loopless routes between two road
/// segments. Useful for alternative-route analysis (e.g. ranking plausible
/// detours for a transition, or auditing how distinctive the shortest path
/// actually is). Returns up to `k` routes ordered by ascending length; fewer
/// when the graph does not admit them within `max_length`.
class KShortestPaths {
 public:
  /// The network must outlive this object.
  explicit KShortestPaths(const RoadNetwork* net);

  std::vector<Route> Find(SegmentId from, SegmentId to, int k, double max_length);

 private:
  /// Shortest route honoring banned segments and a forced prefix.
  std::optional<Route> ConstrainedRoute(SegmentId from, SegmentId to,
                                        const std::vector<SegmentId>& prefix,
                                        const std::vector<bool>& banned,
                                        double max_length);

  const RoadNetwork* net_;
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_K_SHORTEST_H_
