#include "network/contraction.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "core/logging.h"
#include "core/strings.h"

namespace lhmm::network {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t MixHash(uint64_t h, uint64_t x) {
  // splitmix64 finalizer folded into a running hash.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return (h * 0x100000001b3ull) ^ x;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

struct AdjEdge {
  NodeId node = 0;
  double w = 0.0;
};

/// The working state of one preprocessing pass. The dynamic graph starts as
/// the parallel-collapsed node graph of the network and accumulates shortcuts
/// as nodes contract; contracted nodes stay in the adjacency lists and are
/// skipped by flag (cheap at road-network degrees).
class Contractor {
 public:
  Contractor(const RoadNetwork& net, const CHConfig& config)
      : net_(net), config_(config), n_(net.num_nodes()) {
    out_.resize(n_);
    in_.resize(n_);
    contracted_.assign(n_, 0);
    deleted_neighbors_.assign(n_, 0);
    dist_.assign(n_, kInf);
    stamp_.assign(n_, 0);
    for (SegmentId sid = 0; sid < net.num_segments(); ++sid) {
      const RoadSegment& seg = net.segment(sid);
      if (seg.from == seg.to) continue;  // Self-loops never shorten a path.
      AddEdge(seg.from, seg.to, seg.length, /*shortcut=*/false);
    }
  }

  CHGraph Run() {
    std::vector<int32_t> rank(n_, 0);
    using QueueEntry = std::pair<int64_t, NodeId>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    for (NodeId v = 0; v < n_; ++v) queue.push({Priority(v), v});
    int32_t next_rank = 0;
    while (!queue.empty()) {
      const auto [prio, v] = queue.top();
      queue.pop();
      if (contracted_[v]) continue;
      // Lazy update: the stored key may be stale; recompute and only contract
      // while still no worse than the next candidate (ties contract, keeping
      // the order deterministic via the node-id tie-break in QueueEntry).
      const int64_t fresh = Priority(v);
      if (!queue.empty() && fresh > queue.top().first) {
        queue.push({fresh, v});
        continue;
      }
      Contract(v);
      rank[v] = next_rank++;
      contracted_[v] = 1;
      // Refresh neighbor keys eagerly; together with the lazy check above
      // this keeps ordering quality without a decrease-key structure.
      for (const AdjEdge& e : in_[v]) {
        if (!contracted_[e.node]) {
          ++deleted_neighbors_[e.node];
          queue.push({Priority(e.node), e.node});
        }
      }
      for (const AdjEdge& e : out_[v]) {
        if (!contracted_[e.node] && !HasInNeighbor(v, e.node)) {
          ++deleted_neighbors_[e.node];
          queue.push({Priority(e.node), e.node});
        }
      }
    }
    CHECK(next_rank == n_);
    return Assemble(std::move(rank));
  }

 private:
  struct MasterEdge {
    double w = 0.0;
    bool shortcut = false;
  };

  static uint64_t EdgeKey(NodeId u, NodeId v) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(u)) << 32) |
           static_cast<uint32_t>(v);
  }

  bool HasInNeighbor(NodeId v, NodeId candidate) const {
    for (const AdjEdge& e : in_[v]) {
      if (e.node == candidate) return true;
    }
    return false;
  }

  void AddEdge(NodeId u, NodeId v, double w, bool shortcut) {
    bool found = false;
    for (AdjEdge& e : out_[u]) {
      if (e.node == v) {
        if (w < e.w) e.w = w;
        found = true;
        break;
      }
    }
    if (!found) out_[u].push_back({v, w});
    found = false;
    for (AdjEdge& e : in_[v]) {
      if (e.node == u) {
        if (w < e.w) e.w = w;
        found = true;
        break;
      }
    }
    if (!found) in_[v].push_back({u, w});

    const auto [it, inserted] =
        edges_.emplace(EdgeKey(u, v), MasterEdge{w, shortcut});
    if (!inserted && w < it->second.w) it->second.w = w;
  }

  /// Bounded Dijkstra from `source` over uncontracted nodes, excluding
  /// `excluded`, pruned at `bound` and capped at `witness_settle_limit`
  /// settles. Any label it leaves behind is the length of a real path, so a
  /// truncated search can only fail to find witnesses (adding redundant
  /// shortcuts), never invent one.
  void WitnessSearch(NodeId source, NodeId excluded, double bound) {
    ++cur_stamp_;
    using HeapEntry = std::pair<double, NodeId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        heap;
    dist_[source] = 0.0;
    stamp_[source] = cur_stamp_;
    heap.push({0.0, source});
    int settled = 0;
    while (!heap.empty() && settled < config_.witness_settle_limit) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > bound) break;
      if (stamp_[v] != cur_stamp_ || d > dist_[v]) continue;  // Stale entry.
      ++settled;
      for (const AdjEdge& e : out_[v]) {
        if (contracted_[e.node] || e.node == excluded) continue;
        const double nd = d + e.w;
        if (nd > bound) continue;
        if (stamp_[e.node] != cur_stamp_ || nd < dist_[e.node]) {
          stamp_[e.node] = cur_stamp_;
          dist_[e.node] = nd;
          heap.push({nd, e.node});
        }
      }
    }
  }

  /// Counts the shortcuts contracting `v` would insert right now.
  int SimulateContraction(NodeId v) {
    int shortcuts = 0;
    for (const AdjEdge& ein : in_[v]) {
      const NodeId u = ein.node;
      if (contracted_[u] || u == v) continue;
      double max_out = -1.0;
      for (const AdjEdge& eout : out_[v]) {
        if (contracted_[eout.node] || eout.node == u || eout.node == v) {
          continue;
        }
        max_out = std::max(max_out, eout.w);
      }
      if (max_out < 0.0) continue;
      WitnessSearch(u, v, ein.w + max_out);
      for (const AdjEdge& eout : out_[v]) {
        const NodeId x = eout.node;
        if (contracted_[x] || x == u || x == v) continue;
        const double via = ein.w + eout.w;
        if (stamp_[x] == cur_stamp_ && dist_[x] <= via) continue;
        ++shortcuts;
      }
    }
    return shortcuts;
  }

  int64_t Priority(NodeId v) {
    int degree = 0;
    for (const AdjEdge& e : in_[v]) {
      if (!contracted_[e.node]) ++degree;
    }
    for (const AdjEdge& e : out_[v]) {
      if (!contracted_[e.node]) ++degree;
    }
    const int shortcuts = SimulateContraction(v);
    // Classic edge-difference plus contracted-neighbors term; small integer
    // weights keep the key exact and the ordering platform-independent.
    return 2 * static_cast<int64_t>(shortcuts - degree) +
           deleted_neighbors_[v];
  }

  void Contract(NodeId v) {
    for (const AdjEdge& ein : in_[v]) {
      const NodeId u = ein.node;
      if (contracted_[u] || u == v) continue;
      double max_out = -1.0;
      for (const AdjEdge& eout : out_[v]) {
        if (contracted_[eout.node] || eout.node == u || eout.node == v) {
          continue;
        }
        max_out = std::max(max_out, eout.w);
      }
      if (max_out < 0.0) continue;
      WitnessSearch(u, v, ein.w + max_out);
      for (const AdjEdge& eout : out_[v]) {
        const NodeId x = eout.node;
        if (contracted_[x] || x == u || x == v) continue;
        const double via = ein.w + eout.w;
        if (stamp_[x] == cur_stamp_ && dist_[x] <= via) continue;
        AddEdge(u, x, via, /*shortcut=*/true);
      }
    }
  }

  CHGraph Assemble(std::vector<int32_t> rank) {
    CHGraph g;
    g.num_nodes = n_;
    g.fingerprint = CHGraph::NetworkFingerprint(net_);
    g.rank = std::move(rank);

    // Bucket the master edge set into the two CSR halves. Hash-map iteration
    // order must not leak into the layout, so edges are materialized and
    // sorted before filling.
    struct FlatEdge {
      NodeId u, v;
      double w;
      bool shortcut;
    };
    std::vector<FlatEdge> flat;
    flat.reserve(edges_.size());
    for (const auto& [key, e] : edges_) {
      flat.push_back({static_cast<NodeId>(key >> 32),
                      static_cast<NodeId>(key & 0xffffffffu), e.w,
                      e.shortcut});
    }
    std::sort(flat.begin(), flat.end(), [](const FlatEdge& a,
                                           const FlatEdge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });

    std::vector<int32_t> up_count(n_ + 1, 0), down_count(n_ + 1, 0);
    for (const FlatEdge& e : flat) {
      if (e.shortcut) ++g.num_shortcuts;
      if (g.rank[e.v] > g.rank[e.u]) {
        ++up_count[e.u + 1];
      } else {
        ++down_count[e.v + 1];
      }
    }
    for (int i = 0; i < n_; ++i) {
      up_count[i + 1] += up_count[i];
      down_count[i + 1] += down_count[i];
    }
    g.up_begin = up_count;
    g.down_begin = down_count;
    g.up_head.resize(g.up_begin[n_]);
    g.up_weight.resize(g.up_head.size());
    g.down_tail.resize(g.down_begin[n_]);
    g.down_weight.resize(g.down_tail.size());
    std::vector<int32_t> up_fill = g.up_begin, down_fill = g.down_begin;
    for (const FlatEdge& e : flat) {
      if (g.rank[e.v] > g.rank[e.u]) {
        const int32_t i = up_fill[e.u]++;
        g.up_head[i] = e.v;
        g.up_weight[i] = e.w;
      } else {
        const int32_t i = down_fill[e.v]++;
        g.down_tail[i] = e.u;
        g.down_weight[i] = e.w;
      }
    }
    // `flat` is sorted by (u, v): up buckets come out sorted by head. Down
    // buckets are keyed by v, filled in u order — re-sort each bucket so the
    // layout is canonical regardless of fill order.
    for (NodeId v = 0; v < n_; ++v) {
      const int32_t begin = g.down_begin[v], end = g.down_begin[v + 1];
      std::vector<std::pair<NodeId, double>> bucket;
      bucket.reserve(end - begin);
      for (int32_t i = begin; i < end; ++i) {
        bucket.push_back({g.down_tail[i], g.down_weight[i]});
      }
      std::sort(bucket.begin(), bucket.end());
      for (int32_t i = begin; i < end; ++i) {
        g.down_tail[i] = bucket[i - begin].first;
        g.down_weight[i] = bucket[i - begin].second;
      }
    }
    g.Finish();
    return g;
  }

  const RoadNetwork& net_;
  const CHConfig config_;
  const int n_;
  std::vector<std::vector<AdjEdge>> out_, in_;
  std::vector<char> contracted_;
  std::vector<int> deleted_neighbors_;
  std::unordered_map<uint64_t, MasterEdge> edges_;
  // Witness-search scratch, stamp-versioned like SegmentRouter's.
  std::vector<double> dist_;
  std::vector<int> stamp_;
  int cur_stamp_ = 0;
};

}  // namespace

CHGraph CHGraph::Build(const RoadNetwork& net, const CHConfig& config) {
  CHECK(config.witness_settle_limit > 0);
  Contractor contractor(net, config);
  return contractor.Run();
}

uint64_t CHGraph::NetworkFingerprint(const RoadNetwork& net) {
  uint64_t h = 0xcbf29ce484222325ull;
  h = MixHash(h, static_cast<uint64_t>(net.num_nodes()));
  h = MixHash(h, static_cast<uint64_t>(net.num_segments()));
  for (SegmentId sid = 0; sid < net.num_segments(); ++sid) {
    const RoadSegment& seg = net.segment(sid);
    h = MixHash(h, static_cast<uint64_t>(static_cast<uint32_t>(seg.from)));
    h = MixHash(h, static_cast<uint64_t>(static_cast<uint32_t>(seg.to)));
    h = MixHash(h, DoubleBits(seg.length));
  }
  return h;
}

std::string CHGraph::Validate() const {
  if (num_nodes < 0) return "negative num_nodes";
  const size_t n = static_cast<size_t>(num_nodes);
  if (rank.size() != n) {
    return core::StrFormat("rank size %zu != num_nodes %zu", rank.size(), n);
  }
  std::vector<char> seen(n, 0);
  for (size_t v = 0; v < n; ++v) {
    if (rank[v] < 0 || static_cast<size_t>(rank[v]) >= n || seen[rank[v]]) {
      return core::StrFormat("rank[%zu]=%d is not part of a permutation", v,
                             static_cast<int>(rank[v]));
    }
    seen[rank[v]] = 1;
  }
  const auto check_csr = [&](const std::vector<int32_t>& begin,
                             const std::vector<NodeId>& other,
                             const std::vector<double>& weight,
                             const char* what) -> std::string {
    if (begin.size() != n + 1) {
      return core::StrFormat("%s begin size %zu != num_nodes + 1", what,
                             begin.size());
    }
    if (!begin.empty() && begin[0] != 0) {
      return core::StrFormat("%s begin[0] != 0", what);
    }
    if (other.size() != weight.size() ||
        (begin.size() == n + 1 &&
         static_cast<size_t>(begin[n]) != other.size())) {
      return core::StrFormat("%s arrays disagree on edge count", what);
    }
    for (size_t v = 0; v < n; ++v) {
      if (begin[v] > begin[v + 1]) {
        return core::StrFormat("%s begin not monotone at node %zu", what, v);
      }
      for (int32_t i = begin[v]; i < begin[v + 1]; ++i) {
        const NodeId o = other[i];
        if (o < 0 || static_cast<size_t>(o) >= n) {
          return core::StrFormat("%s edge %d endpoint %d out of range", what,
                                 static_cast<int>(i), static_cast<int>(o));
        }
        // Both halves point at the higher-ranked endpoint from the lower one.
        if (rank[o] <= rank[v]) {
          return core::StrFormat("%s edge %d violates rank ordering", what,
                                 static_cast<int>(i));
        }
        if (!std::isfinite(weight[i]) || weight[i] < 0.0) {
          return core::StrFormat("%s edge %d has invalid weight", what,
                                 static_cast<int>(i));
        }
      }
    }
    return "";
  };
  std::string err = check_csr(up_begin, up_head, up_weight, "up");
  if (!err.empty()) return err;
  err = check_csr(down_begin, down_tail, down_weight, "down");
  if (!err.empty()) return err;
  if (num_shortcuts < 0) return "negative num_shortcuts";
  return "";
}

void CHGraph::Finish() {
  nodes_by_rank_desc.assign(static_cast<size_t>(num_nodes), 0);
  for (NodeId v = 0; v < num_nodes; ++v) {
    nodes_by_rank_desc[static_cast<size_t>(num_nodes) - 1 -
                       static_cast<size_t>(rank[v])] = v;
  }
}

}  // namespace lhmm::network
