#ifndef LHMM_NETWORK_PATH_CACHE_H_
#define LHMM_NETWORK_PATH_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "network/grid_index.h"
#include "network/shortest_path.h"

namespace lhmm::network {

struct CHGraph;

/// Memoizing wrapper around SegmentRouter. The paper notes that HMM matchers
/// "can use a precomputation table to avoid the bottleneck of repeated
/// shortest path searches" [11]; this is that table, filled lazily. Negative
/// results (unreachable within the bound) are cached too.
///
/// Thread safe: the table is sharded under striped mutexes, hit/miss counters
/// are atomic, and concurrent cache misses each run their Dijkstra on a
/// private SegmentRouter drawn from an internal pool (SegmentRouter keeps
/// mutable scratch and must not be shared). One CachedRouter can therefore be
/// shared by every worker of a parallel batch match, so route results still
/// amortize across threads. Caching is semantically transparent — a query
/// returns exactly what an uncached SegmentRouter would — which is what makes
/// matching results independent of thread count and interleaving.
class CachedRouter {
 public:
  /// Wraps an external router (must outlive this wrapper). The router becomes
  /// the pool's first member; additional routers are created on demand when
  /// queries overlap in time.
  explicit CachedRouter(SegmentRouter* router, int num_shards = kDefaultShards);

  /// Self-contained variant: all pooled routers are owned.
  explicit CachedRouter(const RoadNetwork* net, int num_shards = kDefaultShards);

  /// Contraction-hierarchy backend: pooled routers are CHRouters over `ch`
  /// (which must match `net` and outlive this cache). Queries return exactly
  /// what the Dijkstra backend would — the hierarchy only accelerates the
  /// misses — so swapping backends never changes matched output.
  CachedRouter(const RoadNetwork* net, const CHGraph* ch,
               int num_shards = kDefaultShards);

  virtual ~CachedRouter() = default;

  /// Shortest route from `from` to `to` bounded by `max_length`. A cached
  /// entry is reused only if it was computed with a bound at least as large.
  /// Virtual so fault-injection wrappers (network::FaultyRouter) can stand in
  /// anywhere a CachedRouter* is accepted.
  virtual std::optional<Route> Route1(SegmentId from, SegmentId to,
                                      double max_length);

  /// Batched variant mirroring SegmentRouter::RouteMany. Runs at most one
  /// Dijkstra for all cache misses.
  virtual std::vector<std::optional<Route>> RouteMany(
      SegmentId from, const std::vector<SegmentId>& targets, double max_length);

  /// Precomputes routes from every segment to all segments within `radius`
  /// meters (the FMM-style precomputation table of [11] the paper mentions:
  /// "The HMM can use a precomputation table to avoid the bottleneck of
  /// repeated shortest path searches"). Eager and memory-proportional to
  /// (segments x neighbors); use for repeated batch matching on one network.
  void WarmAll(const GridIndex& index, double radius);

  /// Diagnostics. Every individual target of every query increments exactly
  /// one of the two counters, so hits() + misses() equals the number of
  /// (from, to) lookups served since construction / Clear().
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const;
  void Clear();
  int num_shards() const { return static_cast<int>(shards_.size()); }

  static constexpr int kDefaultShards = 16;

 private:
  struct Entry {
    std::optional<Route> route;
    double bound = 0.0;  ///< max_length used when the entry was computed.
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
  };

  static uint64_t Key(SegmentId from, SegmentId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }
  Shard& ShardOf(uint64_t key) {
    return *shards_[(key ^ (key >> 32)) % shards_.size()];
  }

  /// Checks out a router for one Dijkstra; returned to the pool afterwards.
  SegmentRouter* AcquireRouter();
  void ReleaseRouter(SegmentRouter* router);

  const RoadNetwork* net_;
  const CHGraph* ch_ = nullptr;  ///< Non-null selects the CH backend.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};

  std::mutex pool_mu_;
  std::vector<SegmentRouter*> free_routers_;
  std::vector<std::unique_ptr<SegmentRouter>> owned_routers_;
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_PATH_CACHE_H_
