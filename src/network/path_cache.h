#ifndef LHMM_NETWORK_PATH_CACHE_H_
#define LHMM_NETWORK_PATH_CACHE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "network/grid_index.h"
#include "network/shortest_path.h"

namespace lhmm::network {

/// Memoizing wrapper around SegmentRouter. The paper notes that HMM matchers
/// "can use a precomputation table to avoid the bottleneck of repeated
/// shortest path searches" [11]; this is that table, filled lazily. Negative
/// results (unreachable within the bound) are cached too.
class CachedRouter {
 public:
  /// The router must outlive this wrapper.
  explicit CachedRouter(SegmentRouter* router) : router_(router) {}

  /// Shortest route from `from` to `to` bounded by `max_length`. A cached
  /// entry is reused only if it was computed with a bound at least as large.
  std::optional<Route> Route1(SegmentId from, SegmentId to, double max_length);

  /// Batched variant mirroring SegmentRouter::RouteMany. Runs at most one
  /// Dijkstra for all cache misses.
  std::vector<std::optional<Route>> RouteMany(SegmentId from,
                                              const std::vector<SegmentId>& targets,
                                              double max_length);

  /// Precomputes routes from every segment to all segments within `radius`
  /// meters (the FMM-style precomputation table of [11] the paper mentions:
  /// "The HMM can use a precomputation table to avoid the bottleneck of
  /// repeated shortest path searches"). Eager and memory-proportional to
  /// (segments x neighbors); use for repeated batch matching on one network.
  void WarmAll(const GridIndex& index, double radius);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t size() const { return cache_.size(); }
  void Clear() { cache_.clear(); }

 private:
  struct Entry {
    std::optional<Route> route;
    double bound = 0.0;  ///< max_length used when the entry was computed.
  };

  static uint64_t Key(SegmentId from, SegmentId to) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32) |
           static_cast<uint32_t>(to);
  }

  SegmentRouter* router_;
  std::unordered_map<uint64_t, Entry> cache_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_PATH_CACHE_H_
