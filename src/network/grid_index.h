#ifndef LHMM_NETWORK_GRID_INDEX_H_
#define LHMM_NETWORK_GRID_INDEX_H_

#include <vector>

#include "geo/point.h"
#include "network/road_network.h"

namespace lhmm::network {

/// A segment id together with its distance from a query point and the closest
/// point on its geometry.
struct SegmentHit {
  SegmentId segment = kInvalidSegment;
  double dist = 0.0;
  geo::Point closest;
};

/// Flattened cell buckets of a GridIndex, for persistence (the mmap store's
/// GRID section). The snapshot pins the cell geometry exactly — origin, pitch,
/// grid shape, and per-cell id lists — so an index restored from it answers
/// every query byte-identically to the one that was built from the network.
struct GridSnapshot {
  double cell_size = 0.0;
  double origin_x = 0.0;
  double origin_y = 0.0;
  int cols = 0;
  int rows = 0;
  /// cols*rows + 1 prefix offsets into `ids`; cell c holds
  /// ids[cell_begin[c] .. cell_begin[c+1]).
  std::vector<int64_t> cell_begin;
  std::vector<SegmentId> ids;
};

/// Uniform-grid spatial index over road segment geometries. Candidate
/// preparation (HMM step 1) issues radius queries here; cells are sized for
/// cellular search radii (hundreds of meters to kilometers).
///
/// Queries are const and keep all state on the stack, so one index can be
/// shared by every worker of a parallel batch match.
class GridIndex {
 public:
  /// Builds the index over all segments of `net`. The network must outlive
  /// the index. `cell_size` is the grid pitch in meters.
  explicit GridIndex(const RoadNetwork* net, double cell_size = 250.0);

  /// Restores an index from a snapshot without re-scanning segment geometry.
  /// The snapshot must describe `net` (ids in range, consistent prefix sums);
  /// violations are fatal programming errors — callers restoring from
  /// untrusted bytes validate sizes/ranges first (store::MappedStore does).
  GridIndex(const RoadNetwork* net, const GridSnapshot& snap);

  /// Flattens the cell buckets for persistence.
  GridSnapshot Snapshot() const;

  /// All segments whose geometry lies within `radius` meters of `p`, sorted
  /// by ascending distance.
  std::vector<SegmentHit> Query(const geo::Point& p, double radius) const;

  /// The `k` nearest segments to `p`, expanding the search radius as needed;
  /// sorted by ascending distance. Returns fewer if the network is smaller.
  std::vector<SegmentHit> Nearest(const geo::Point& p, int k) const;

  double cell_size() const { return cell_size_; }

  /// The indexed network.
  const RoadNetwork* network() const { return net_; }

 private:
  int CellOf(double x, double y) const;
  void CollectInRadius(const geo::Point& p, double radius,
                       std::vector<SegmentHit>* out) const;

  const RoadNetwork* net_;
  double cell_size_;
  double origin_x_ = 0.0;
  double origin_y_ = 0.0;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<std::vector<SegmentId>> cells_;
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_GRID_INDEX_H_
