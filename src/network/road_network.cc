#include "network/road_network.h"

#include <algorithm>

#include "core/logging.h"
#include "core/strings.h"

namespace lhmm::network {

NodeId RoadNetwork::AddNode(const geo::Point& pos) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, pos});
  out_segments_.emplace_back();
  in_segments_.emplace_back();
  bounds_.Extend(pos);
  return id;
}

SegmentId RoadNetwork::AddSegment(NodeId from, NodeId to, geo::Polyline geometry,
                                  double speed_limit, RoadLevel level) {
  CHECK_GE(from, 0);
  CHECK_LT(from, num_nodes());
  CHECK_GE(to, 0);
  CHECK_LT(to, num_nodes());
  CHECK_NE(from, to) << "self-loop segments are not supported";
  const SegmentId id = static_cast<SegmentId>(segments_.size());
  RoadSegment seg;
  seg.id = id;
  seg.from = from;
  seg.to = to;
  seg.length = geometry.Length();
  seg.geometry = std::move(geometry);
  seg.speed_limit = speed_limit;
  seg.level = level;
  segments_.push_back(std::move(seg));
  out_segments_[from].push_back(id);
  in_segments_[to].push_back(id);
  return id;
}

SegmentId RoadNetwork::AddSegment(NodeId from, NodeId to, double speed_limit,
                                  RoadLevel level) {
  geo::Polyline geom({nodes_[from].pos, nodes_[to].pos});
  return AddSegment(from, to, std::move(geom), speed_limit, level);
}

void RoadNetwork::SetReverse(SegmentId seg, SegmentId twin) {
  CHECK_GE(seg, 0);
  CHECK_LT(seg, num_segments());
  CHECK_GE(twin, 0);
  CHECK_LT(twin, num_segments());
  CHECK(segments_[seg].from == segments_[twin].to &&
        segments_[seg].to == segments_[twin].from)
      << "reverse twins must connect the same nodes in opposite directions";
  segments_[seg].reverse = twin;
}

SegmentId RoadNetwork::AddTwoWay(NodeId a, NodeId b, double speed_limit,
                                 RoadLevel level) {
  const SegmentId fwd = AddSegment(a, b, speed_limit, level);
  const SegmentId bwd = AddSegment(b, a, speed_limit, level);
  segments_[fwd].reverse = bwd;
  segments_[bwd].reverse = fwd;
  return fwd;
}

core::Status RoadNetwork::Validate() const {
  for (const RoadSegment& seg : segments_) {
    if (seg.from < 0 || seg.from >= num_nodes() || seg.to < 0 ||
        seg.to >= num_nodes()) {
      return core::Status::Internal(
          core::StrFormat("segment %d has out-of-range endpoints", seg.id));
    }
    if (geo::Distance(seg.geometry.front(), nodes_[seg.from].pos) > 1e-6 ||
        geo::Distance(seg.geometry.back(), nodes_[seg.to].pos) > 1e-6) {
      return core::Status::Internal(
          core::StrFormat("segment %d geometry does not match endpoints", seg.id));
    }
    if (seg.length <= 0.0) {
      return core::Status::Internal(
          core::StrFormat("segment %d has non-positive length", seg.id));
    }
    if (seg.reverse != kInvalidSegment) {
      const RoadSegment& twin = segments_[seg.reverse];
      if (twin.from != seg.to || twin.to != seg.from) {
        return core::Status::Internal(
            core::StrFormat("segment %d reverse twin mismatch", seg.id));
      }
    }
  }
  return core::Status::Ok();
}

std::vector<NodeId> RoadNetwork::LargestStronglyConnectedComponent() const {
  // Iterative Tarjan SCC.
  const int n = num_nodes();
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<int> component(n, -1);
  int next_index = 0;
  int num_components = 0;

  struct Frame {
    NodeId node;
    size_t edge = 0;
  };
  std::vector<Frame> call_stack;

  for (NodeId start = 0; start < n; ++start) {
    if (index[start] != -1) continue;
    call_stack.push_back({start, 0});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const NodeId v = frame.node;
      const auto& outs = out_segments_[v];
      if (frame.edge < outs.size()) {
        const NodeId w = segments_[outs[frame.edge]].to;
        ++frame.edge;
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const NodeId parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component[w] = num_components;
            if (w == v) break;
          }
          ++num_components;
        }
      }
    }
  }

  std::vector<int> sizes(num_components, 0);
  for (NodeId v = 0; v < n; ++v) ++sizes[component[v]];
  const int best =
      static_cast<int>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> out;
  out.reserve(sizes[best]);
  for (NodeId v = 0; v < n; ++v) {
    if (component[v] == best) out.push_back(v);
  }
  return out;
}

RoadNetwork RoadNetwork::InducedSubnetwork(const std::vector<NodeId>& keep_nodes) const {
  std::vector<NodeId> remap(num_nodes(), kInvalidNode);
  RoadNetwork out;
  for (NodeId old_id : keep_nodes) {
    remap[old_id] = out.AddNode(nodes_[old_id].pos);
  }
  // First pass: copy kept segments, remembering old->new segment ids so that
  // reverse-twin links can be rewritten.
  std::vector<SegmentId> seg_remap(num_segments(), kInvalidSegment);
  for (const RoadSegment& seg : segments_) {
    const NodeId nf = remap[seg.from];
    const NodeId nt = remap[seg.to];
    if (nf == kInvalidNode || nt == kInvalidNode) continue;
    seg_remap[seg.id] =
        out.AddSegment(nf, nt, seg.geometry, seg.speed_limit, seg.level);
  }
  for (const RoadSegment& seg : segments_) {
    if (seg_remap[seg.id] == kInvalidSegment) continue;
    if (seg.reverse != kInvalidSegment &&
        seg_remap[seg.reverse] != kInvalidSegment) {
      out.segments_[seg_remap[seg.id]].reverse = seg_remap[seg.reverse];
    }
  }
  return out;
}

double PathLength(const RoadNetwork& net, const std::vector<SegmentId>& path) {
  double total = 0.0;
  for (SegmentId id : path) total += net.segment(id).length;
  return total;
}

bool IsConnectedPath(const RoadNetwork& net, const std::vector<SegmentId>& path) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (!net.AreConsecutive(path[i], path[i + 1])) return false;
  }
  return true;
}

}  // namespace lhmm::network
