#ifndef LHMM_NETWORK_CONTRACTION_H_
#define LHMM_NETWORK_CONTRACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "network/road_network.h"

namespace lhmm::network {

/// Knobs for the contraction-hierarchy preprocessing pass.
struct CHConfig {
  /// A witness search settles at most this many nodes before giving up and
  /// conservatively inserting the shortcut. Truncation can only add redundant
  /// shortcuts, never lose a shortest path, so correctness is independent of
  /// the limit.
  int witness_settle_limit = 400;
};

/// Preprocessed contraction hierarchy over a road network's node graph
/// (OSRM-style: every node gets a rank, contracting a node inserts shortcut
/// edges between its neighbors unless a witness path is at least as short).
/// Parallel segments between the same node pair collapse to their minimum
/// length: the hierarchy answers *distance* queries only; exact segment
/// chains always come from the road network itself (see CHRouter).
///
/// The edge set is split into two CSR halves by rank:
///  - `up_*`:   out-edges v -> up_head[i] with rank[up_head[i]] > rank[v];
///  - `down_*`: in-edges down_tail[i] -> v with rank[down_tail[i]] > rank[v];
/// together they cover every original (collapsed) edge plus every shortcut.
/// By the standard CH property, for any reachable pair (a, b) some shortest
/// a->b path is an up-then-down path over these halves.
///
/// Construction is fully deterministic (lazy edge-difference ordering with
/// node-id tie-breaks), so the same network always yields the same hierarchy
/// and the on-disk form (io/ch_io.h) is reproducible.
struct CHGraph {
  int32_t num_nodes = 0;
  int64_t num_shortcuts = 0;
  /// Fingerprint of the source network; guards against loading a hierarchy
  /// preprocessed for a different graph.
  uint64_t fingerprint = 0;

  /// Node -> contraction rank, a permutation of [0, num_nodes): higher rank
  /// means contracted later (more "important").
  std::vector<int32_t> rank;

  /// Upward half, CSR by tail node: for node v, entries
  /// [up_begin[v], up_begin[v + 1]) are edges v -> up_head[i] of length
  /// up_weight[i], each head ranked above v. Sorted by head id per node.
  std::vector<int32_t> up_begin;
  std::vector<NodeId> up_head;
  std::vector<double> up_weight;

  /// Downward half, CSR by *head* node: for node v, entries
  /// [down_begin[v], down_begin[v + 1]) are edges down_tail[i] -> v of length
  /// down_weight[i], each tail ranked above v. Sorted by tail id per node.
  std::vector<int32_t> down_begin;
  std::vector<NodeId> down_tail;
  std::vector<double> down_weight;

  /// Derived (not persisted): all nodes sorted by descending rank, the sweep
  /// order used by CHRouter. Rebuilt by Finish().
  std::vector<NodeId> nodes_by_rank_desc;

  /// Runs the preprocessing pass. O(n log n)-ish on road-like graphs; cost is
  /// paid once per network (or once ever, via io::SaveCHGraph).
  static CHGraph Build(const RoadNetwork& net, const CHConfig& config = {});

  /// Deterministic fingerprint of the network topology + lengths.
  static uint64_t NetworkFingerprint(const RoadNetwork& net);

  /// Validates structural invariants (rank permutation, CSR monotonicity,
  /// heads/tails in range, finite non-negative weights, rank ordering per
  /// edge). Returns an empty string when sound, else a description of the
  /// first violation. Used by the loader before trusting untrusted bytes.
  std::string Validate() const;

  /// Rebuilds derived members after Build or a successful load.
  void Finish();

  int64_t num_up_edges() const { return static_cast<int64_t>(up_head.size()); }
  int64_t num_down_edges() const {
    return static_cast<int64_t>(down_tail.size());
  }
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_CONTRACTION_H_
