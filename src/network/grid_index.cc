#include "network/grid_index.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::network {

GridIndex::GridIndex(const RoadNetwork* net, double cell_size)
    : net_(net), cell_size_(cell_size) {
  CHECK(net != nullptr);
  CHECK_GT(cell_size, 0.0);
  geo::BBox bounds = net->Bounds();
  if (bounds.Empty()) {
    bounds.Extend({0, 0});
  }
  bounds.Inflate(cell_size);
  origin_x_ = bounds.min_x;
  origin_y_ = bounds.min_y;
  cols_ = std::max(1, static_cast<int>(std::ceil(bounds.Width() / cell_size)));
  rows_ = std::max(1, static_cast<int>(std::ceil(bounds.Height() / cell_size)));
  cells_.resize(static_cast<size_t>(cols_) * rows_);
  for (const RoadSegment& seg : net->segments()) {
    const geo::BBox& b = seg.geometry.Bounds();
    const int cx0 = std::clamp(
        static_cast<int>((b.min_x - origin_x_) / cell_size_), 0, cols_ - 1);
    const int cx1 = std::clamp(
        static_cast<int>((b.max_x - origin_x_) / cell_size_), 0, cols_ - 1);
    const int cy0 = std::clamp(
        static_cast<int>((b.min_y - origin_y_) / cell_size_), 0, rows_ - 1);
    const int cy1 = std::clamp(
        static_cast<int>((b.max_y - origin_y_) / cell_size_), 0, rows_ - 1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        cells_[static_cast<size_t>(cy) * cols_ + cx].push_back(seg.id);
      }
    }
  }
}

GridIndex::GridIndex(const RoadNetwork* net, const GridSnapshot& snap)
    : net_(net),
      cell_size_(snap.cell_size),
      origin_x_(snap.origin_x),
      origin_y_(snap.origin_y),
      cols_(snap.cols),
      rows_(snap.rows) {
  CHECK(net != nullptr);
  CHECK_GT(snap.cell_size, 0.0);
  CHECK_GE(snap.cols, 1);
  CHECK_GE(snap.rows, 1);
  const size_t num_cells = static_cast<size_t>(cols_) * rows_;
  CHECK_EQ(snap.cell_begin.size(), num_cells + 1);
  CHECK_EQ(snap.cell_begin.front(), 0);
  CHECK_EQ(snap.cell_begin.back(), static_cast<int64_t>(snap.ids.size()));
  cells_.resize(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    const int64_t begin = snap.cell_begin[c];
    const int64_t end = snap.cell_begin[c + 1];
    CHECK_LE(begin, end);
    cells_[c].assign(snap.ids.begin() + begin, snap.ids.begin() + end);
    for (SegmentId id : cells_[c]) {
      CHECK_GE(id, 0);
      CHECK_LT(id, net->num_segments());
    }
  }
}

GridSnapshot GridIndex::Snapshot() const {
  GridSnapshot snap;
  snap.cell_size = cell_size_;
  snap.origin_x = origin_x_;
  snap.origin_y = origin_y_;
  snap.cols = cols_;
  snap.rows = rows_;
  snap.cell_begin.reserve(cells_.size() + 1);
  snap.cell_begin.push_back(0);
  for (const std::vector<SegmentId>& cell : cells_) {
    snap.ids.insert(snap.ids.end(), cell.begin(), cell.end());
    snap.cell_begin.push_back(static_cast<int64_t>(snap.ids.size()));
  }
  return snap;
}

int GridIndex::CellOf(double x, double y) const {
  const int cx = std::clamp(static_cast<int>((x - origin_x_) / cell_size_), 0,
                            cols_ - 1);
  const int cy = std::clamp(static_cast<int>((y - origin_y_) / cell_size_), 0,
                            rows_ - 1);
  return cy * cols_ + cx;
}

void GridIndex::CollectInRadius(const geo::Point& p, double radius,
                                std::vector<SegmentHit>* out) const {
  const int cx0 = std::clamp(
      static_cast<int>((p.x - radius - origin_x_) / cell_size_), 0, cols_ - 1);
  const int cx1 = std::clamp(
      static_cast<int>((p.x + radius - origin_x_) / cell_size_), 0, cols_ - 1);
  const int cy0 = std::clamp(
      static_cast<int>((p.y - radius - origin_y_) / cell_size_), 0, rows_ - 1);
  const int cy1 = std::clamp(
      static_cast<int>((p.y + radius - origin_y_) / cell_size_), 0, rows_ - 1);
  // Gather ids from every overlapped cell and dedupe locally (a segment spans
  // several cells) before the expensive projections. Query state lives
  // entirely on this stack frame: one index is shared by all workers of a
  // parallel batch match, so queries must not touch member scratch.
  std::vector<SegmentId> ids;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::vector<SegmentId>& cell =
          cells_[static_cast<size_t>(cy) * cols_ + cx];
      ids.insert(ids.end(), cell.begin(), cell.end());
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (SegmentId id : ids) {
    const geo::PolylineProjection proj = net_->segment(id).geometry.Project(p);
    if (proj.dist <= radius) {
      out->push_back(SegmentHit{id, proj.dist, proj.point});
    }
  }
}

std::vector<SegmentHit> GridIndex::Query(const geo::Point& p, double radius) const {
  std::vector<SegmentHit> out;
  CollectInRadius(p, radius, &out);
  std::sort(out.begin(), out.end(), [](const SegmentHit& a, const SegmentHit& b) {
    return a.dist != b.dist ? a.dist < b.dist : a.segment < b.segment;
  });
  return out;
}

std::vector<SegmentHit> GridIndex::Nearest(const geo::Point& p, int k) const {
  double radius = cell_size_;
  const int total = net_->num_segments();
  while (true) {
    std::vector<SegmentHit> out;
    CollectInRadius(p, radius, &out);
    if (static_cast<int>(out.size()) >= std::min(k, total) ||
        radius > 4.0 * cell_size_ * std::max(cols_, rows_)) {
      std::sort(out.begin(), out.end(),
                [](const SegmentHit& a, const SegmentHit& b) {
                  return a.dist != b.dist ? a.dist < b.dist
                                          : a.segment < b.segment;
                });
      if (static_cast<int>(out.size()) > k) out.resize(k);
      return out;
    }
    radius *= 2.0;
  }
}

}  // namespace lhmm::network
