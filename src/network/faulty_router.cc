#include "network/faulty_router.h"

#include <chrono>
#include <thread>

namespace lhmm::network {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed 64 -> 64 bit hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultyRouter::FaultyRouter(SegmentRouter* router, const FaultConfig& config)
    : CachedRouter(router), config_(config) {}

FaultyRouter::FaultyRouter(const RoadNetwork* net, const FaultConfig& config)
    : CachedRouter(net), config_(config) {}

FaultyRouter::FaultyRouter(const RoadNetwork* net, const CHGraph* ch,
                           const FaultConfig& config)
    : CachedRouter(net, ch), config_(config) {}

double FaultyRouter::Draw(SegmentId from, SegmentId to, uint64_t salt) const {
  uint64_t h = Mix(config_.seed ^ salt);
  h = Mix(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(from)) << 32 |
               static_cast<uint32_t>(to)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultyRouter::IsFaulted(SegmentId from, SegmentId to) const {
  return Draw(from, to, /*salt=*/0x5fa17ULL) < config_.route_failure_rate;
}

bool FaultyRouter::IsDelayed(SegmentId from, SegmentId to) const {
  return config_.latency_rate > 0.0 && config_.latency_micros > 0 &&
         Draw(from, to, /*salt=*/0xde1a7ULL) < config_.latency_rate;
}

void FaultyRouter::MaybeDelay(SegmentId from, SegmentId to) {
  if (IsDelayed(from, to)) {
    injected_delays_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(config_.latency_micros));
  }
}

std::optional<Route> FaultyRouter::Route1(SegmentId from, SegmentId to,
                                          double max_length) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  MaybeDelay(from, to);
  if (IsFaulted(from, to)) {
    injected_failures_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  // Call the base batched form non-virtually: the base Route1 would dispatch
  // back into this class and double-count the query.
  std::vector<std::optional<Route>> routes =
      CachedRouter::RouteMany(from, {to}, max_length);
  return std::move(routes[0]);
}

std::vector<std::optional<Route>> FaultyRouter::RouteMany(
    SegmentId from, const std::vector<SegmentId>& targets, double max_length) {
  queries_.fetch_add(static_cast<int64_t>(targets.size()),
                     std::memory_order_relaxed);
  // Draw the latency decision per (from, target) pair, exactly as Route1
  // would, so injected_delays() counts pairs — not batches — and does not
  // depend on how callers group their targets. The sleeps are served as one
  // aggregate wait per batch; per-pair accounting stays exact.
  int64_t delayed = 0;
  for (const SegmentId to : targets) {
    if (IsDelayed(from, to)) ++delayed;
  }
  if (delayed > 0) {
    injected_delays_.fetch_add(delayed, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.latency_micros * delayed));
  }
  std::vector<std::optional<Route>> out =
      CachedRouter::RouteMany(from, targets, max_length);
  for (size_t i = 0; i < targets.size(); ++i) {
    // Count every faulted pair (as Route1 does), whether or not the
    // underlying query found a route, so the counter is a pure function of
    // the queried pairs and usable in determinism assertions.
    if (IsFaulted(from, targets[i])) {
      injected_failures_.fetch_add(1, std::memory_order_relaxed);
      out[i].reset();
    }
  }
  return out;
}

}  // namespace lhmm::network
