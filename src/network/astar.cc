#include "network/astar.h"

#include <algorithm>
#include <queue>

#include "core/logging.h"

namespace lhmm::network {

AStarRouter::AStarRouter(const RoadNetwork* net) : net_(net) {
  CHECK(net != nullptr);
  g_.assign(net->num_nodes(), 0.0);
  parent_seg_.assign(net->num_nodes(), kInvalidSegment);
  stamp_.assign(net->num_nodes(), 0);
  settled_stamp_.assign(net->num_nodes(), 0);
}

std::optional<Route> AStarRouter::Route1(SegmentId from, SegmentId to,
                                         double max_length) {
  if (from == to) return Route{0.0, {from}};
  ++current_stamp_;
  last_expanded_ = 0;

  const NodeId source = net_->segment(from).to;
  const NodeId goal = net_->segment(to).from;
  const geo::Point goal_pos = net_->node(goal).pos;
  auto heuristic = [&](NodeId v) {
    return geo::Distance(net_->node(v).pos, goal_pos);
  };

  using HeapEntry = std::pair<double, NodeId>;  // (g + h, node)
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  g_[source] = 0.0;
  parent_seg_[source] = kInvalidSegment;
  stamp_[source] = current_stamp_;
  heap.push({heuristic(source), source});

  while (!heap.empty()) {
    const auto [f, v] = heap.top();
    heap.pop();
    if (settled_stamp_[v] == current_stamp_) continue;
    settled_stamp_[v] = current_stamp_;
    ++last_expanded_;
    if (v == goal) break;
    if (f > max_length) return std::nullopt;  // Even the optimistic bound fails.
    for (SegmentId sid : net_->OutSegments(v)) {
      const RoadSegment& seg = net_->segment(sid);
      const double ng = g_[v] + seg.length;
      if (ng > max_length) continue;
      if (stamp_[seg.to] != current_stamp_ || ng < g_[seg.to]) {
        stamp_[seg.to] = current_stamp_;
        g_[seg.to] = ng;
        parent_seg_[seg.to] = sid;
        heap.push({ng + heuristic(seg.to), seg.to});
      }
    }
  }
  if (settled_stamp_[goal] != current_stamp_) return std::nullopt;
  if (g_[goal] > max_length) return std::nullopt;

  Route route;
  route.length = g_[goal];
  std::vector<SegmentId> mid;
  NodeId v = goal;
  while (parent_seg_[v] != kInvalidSegment) {
    mid.push_back(parent_seg_[v]);
    v = net_->segment(parent_seg_[v]).from;
  }
  std::reverse(mid.begin(), mid.end());
  route.segments.push_back(from);
  route.segments.insert(route.segments.end(), mid.begin(), mid.end());
  route.segments.push_back(to);
  return route;
}

}  // namespace lhmm::network
