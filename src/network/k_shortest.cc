#include "network/k_shortest.h"

#include <algorithm>
#include <queue>
#include <set>

#include "core/logging.h"

namespace lhmm::network {

namespace {

/// Connecting length of a full segment chain (sum of interior segments),
/// consistent with Route::length semantics.
double ChainLength(const RoadNetwork& net, const std::vector<SegmentId>& chain) {
  double total = 0.0;
  for (size_t i = 1; i + 1 < chain.size(); ++i) {
    total += net.segment(chain[i]).length;
  }
  return total;
}

}  // namespace

KShortestPaths::KShortestPaths(const RoadNetwork* net) : net_(net) {
  CHECK(net != nullptr);
}

std::optional<Route> KShortestPaths::ConstrainedRoute(
    SegmentId from, SegmentId to, const std::vector<SegmentId>& prefix,
    const std::vector<bool>& banned, double max_length) {
  if (from == to) {
    if (banned[from]) return std::nullopt;
    return Route{0.0, {from}};
  }
  // Node Dijkstra from from.to to to.from skipping banned segments.
  const int n = net_->num_nodes();
  std::vector<double> dist(n, 1e18);
  std::vector<SegmentId> parent(n, kInvalidSegment);
  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  const NodeId source = net_->segment(from).to;
  const NodeId goal = net_->segment(to).from;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v] || d > max_length) continue;
    if (v == goal) break;
    for (SegmentId sid : net_->OutSegments(v)) {
      if (banned[sid]) continue;
      const RoadSegment& seg = net_->segment(sid);
      const double nd = d + seg.length;
      if (nd < dist[seg.to] && nd <= max_length) {
        dist[seg.to] = nd;
        parent[seg.to] = sid;
        heap.push({nd, seg.to});
      }
    }
  }
  if (dist[goal] > max_length) return std::nullopt;
  Route route;
  route.segments.push_back(from);
  std::vector<SegmentId> mid;
  NodeId v = goal;
  while (parent[v] != kInvalidSegment) {
    mid.push_back(parent[v]);
    v = net_->segment(parent[v]).from;
  }
  if (v != source) return std::nullopt;  // Goal not actually reached.
  std::reverse(mid.begin(), mid.end());
  route.segments.insert(route.segments.end(), mid.begin(), mid.end());
  route.segments.push_back(to);
  route.length = dist[goal];
  (void)prefix;
  return route;
}

std::vector<Route> KShortestPaths::Find(SegmentId from, SegmentId to, int k,
                                        double max_length) {
  CHECK_GE(k, 1);
  std::vector<Route> result;
  std::vector<bool> no_bans(net_->num_segments(), false);
  auto first = ConstrainedRoute(from, to, {}, no_bans, max_length);
  if (!first.has_value()) return result;
  result.push_back(std::move(*first));

  // Candidate pool ordered by length; dedup on the segment chain.
  auto cmp = [](const Route& a, const Route& b) { return a.length > b.length; };
  std::priority_queue<Route, std::vector<Route>, decltype(cmp)> candidates(cmp);
  std::set<std::vector<SegmentId>> seen;
  seen.insert(result[0].segments);

  while (static_cast<int>(result.size()) < k) {
    const Route& last = result.back();
    // Spur from every position of the last accepted path (except the final
    // target segment).
    for (size_t i = 0; i + 1 < last.segments.size(); ++i) {
      const SegmentId spur = last.segments[i];
      const std::vector<SegmentId> root(last.segments.begin(),
                                        last.segments.begin() + i);
      std::vector<bool> banned(net_->num_segments(), false);
      // Ban the next segment of every accepted path sharing this root.
      for (const Route& r : result) {
        if (r.segments.size() > i + 1 &&
            std::equal(root.begin(), root.end(), r.segments.begin()) &&
            r.segments[i] == spur) {
          banned[r.segments[i + 1]] = true;
        }
      }
      // Keep the spur path loopless w.r.t. the root.
      for (SegmentId sid : root) banned[sid] = true;

      auto spur_route = ConstrainedRoute(spur, to, root, banned, max_length);
      if (!spur_route.has_value()) continue;
      std::vector<SegmentId> chain = root;
      chain.insert(chain.end(), spur_route->segments.begin(),
                   spur_route->segments.end());
      if (chain.front() != from) continue;  // Root must begin at the source.
      if (!IsConnectedPath(*net_, chain)) continue;
      if (seen.count(chain)) continue;
      Route total;
      total.length = ChainLength(*net_, chain);
      if (total.length > max_length) continue;
      total.segments = std::move(chain);
      seen.insert(total.segments);
      candidates.push(std::move(total));
    }
    if (candidates.empty()) break;
    result.push_back(candidates.top());
    candidates.pop();
  }
  return result;
}

}  // namespace lhmm::network
