#ifndef LHMM_NETWORK_SHORTEST_PATH_H_
#define LHMM_NETWORK_SHORTEST_PATH_H_

#include <optional>
#include <vector>

#include "network/road_network.h"

namespace lhmm::network {

/// A shortest route between two road segments. `segments` lists the full
/// segment chain including both endpoints; `length` is the connecting length
/// in meters, i.e. the sum of all intermediate segment lengths (0 when the
/// target directly follows the source or equals it). This matches the paper's
/// route-length term dist(c_{i-1}^j, c_i^k) in Eq. (3).
struct Route {
  double length = 0.0;
  std::vector<SegmentId> segments;
};

/// Dijkstra-based router between road segments with bounded search and
/// one-to-many queries. Keeps per-instance scratch buffers, so one instance
/// should be reused across queries (not thread safe).
class SegmentRouter {
 public:
  /// The network must outlive the router.
  explicit SegmentRouter(const RoadNetwork* net);

  /// Shortest route from `from` to `to` with connecting length at most
  /// `max_length`. Returns nullopt when unreachable within the bound.
  std::optional<Route> Route1(SegmentId from, SegmentId to, double max_length);

  /// Shortest routes from `from` to each element of `targets`, all bounded by
  /// `max_length`. Output is parallel to `targets`; unreachable entries are
  /// nullopt. A single Dijkstra pass serves all targets, which is what makes
  /// the HMM candidate graph construction tractable.
  std::vector<std::optional<Route>> RouteMany(SegmentId from,
                                              const std::vector<SegmentId>& targets,
                                              double max_length);

  /// Node-to-node shortest path distance bounded by `max_length`; -1 when
  /// unreachable. Exposed for tests and the simulator.
  double NodeDistance(NodeId from, NodeId to, double max_length);

  const RoadNetwork* network() const { return net_; }

 private:
  void RunDijkstra(NodeId source, const std::vector<NodeId>& target_nodes,
                   double max_length);
  /// Reconstructs the intermediate segment chain ending at `node`.
  std::vector<SegmentId> BacktrackSegments(NodeId node) const;

  const RoadNetwork* net_;
  // Scratch: distance labels and parent segments, versioned by stamps to
  // avoid O(V) clearing per query.
  std::vector<double> dist_;
  std::vector<SegmentId> parent_seg_;
  std::vector<int> stamp_;
  std::vector<int> settled_stamp_;
  std::vector<NodeId> targets_scratch_;
  int current_stamp_ = 0;
};

/// Route distance helper used by trajectory-level features: length of the
/// shortest route between two segments, or `fallback` when unreachable.
double RouteLengthOr(SegmentRouter* router, SegmentId from, SegmentId to,
                     double max_length, double fallback);

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_SHORTEST_PATH_H_
