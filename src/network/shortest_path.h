#ifndef LHMM_NETWORK_SHORTEST_PATH_H_
#define LHMM_NETWORK_SHORTEST_PATH_H_

#include <optional>
#include <vector>

#include "network/road_network.h"

namespace lhmm::network {

/// A shortest route between two road segments. `segments` lists the full
/// segment chain including both endpoints; `length` is the connecting length
/// in meters, i.e. the sum of all intermediate segment lengths (0 when the
/// target directly follows the source or equals it). This matches the paper's
/// route-length term dist(c_{i-1}^j, c_i^k) in Eq. (3).
struct Route {
  double length = 0.0;
  std::vector<SegmentId> segments;
};

/// A node-exclusion oracle for corridor-pruned Dijkstra runs. `reach[v]`
/// (valid when `reach_stamp[v] == stamp`) is a conservative lower bound on
/// the remaining distance from `v` to the nearest query target; nodes whose
/// best-known distance plus that bound exceeds `cutoff` cannot lie on any
/// in-bound route and may be skipped. Labels are materialized lazily: on a
/// stamp miss, `materialize(ctx, v)` computes the label (filling the memo
/// as a side effect) and returns it, so the hot path stays two array reads
/// while the supplier never has to label the whole graph up front.
/// Suppliers (CHRouter) must build `cutoff` with enough slack over the
/// query bound that the skipped set provably excludes nothing the unpruned
/// search would keep — pruning then changes which nodes are *explored*,
/// never any returned result.
struct RoutePrune {
  const double* reach = nullptr;
  const int* reach_stamp = nullptr;
  int stamp = 0;
  double cutoff = 0.0;
  double (*materialize)(void* ctx, NodeId v) = nullptr;
  void* ctx = nullptr;

  bool Excluded(NodeId v, double dist_so_far) const {
    const double r =
        reach_stamp[v] == stamp ? reach[v] : materialize(ctx, v);
    return dist_so_far + r > cutoff;
  }
};

/// Dijkstra-based router between road segments with bounded search and
/// one-to-many queries. Keeps per-instance scratch buffers, so one instance
/// should be reused across queries (not thread safe).
///
/// The query surface is virtual so preprocessed backends (CHRouter) can stand
/// in anywhere a SegmentRouter* is accepted — notably CachedRouter's pool.
class SegmentRouter {
 public:
  /// The network must outlive the router.
  explicit SegmentRouter(const RoadNetwork* net);
  virtual ~SegmentRouter() = default;

  /// Shortest route from `from` to `to` with connecting length at most
  /// `max_length`. Returns nullopt when unreachable within the bound.
  virtual std::optional<Route> Route1(SegmentId from, SegmentId to,
                                      double max_length);

  /// Shortest routes from `from` to each element of `targets`, all bounded by
  /// `max_length`. Output is parallel to `targets`; unreachable entries are
  /// nullopt. A single Dijkstra pass serves all targets, which is what makes
  /// the HMM candidate graph construction tractable.
  virtual std::vector<std::optional<Route>> RouteMany(
      SegmentId from, const std::vector<SegmentId>& targets,
      double max_length);

  /// Node-to-node shortest path distance bounded by `max_length`; -1 when
  /// unreachable. Exposed for tests and the simulator.
  virtual double NodeDistance(NodeId from, NodeId to, double max_length);

  const RoadNetwork* network() const { return net_; }

 protected:
  /// The actual search, optionally corridor-pruned. All public entry points
  /// (here and in subclasses) funnel into these, so every backend produces
  /// results from the identical relax/settle/backtrack code path — the
  /// foundation of the bit-identical-results contract.
  std::vector<std::optional<Route>> RouteManyImpl(
      SegmentId from, const std::vector<SegmentId>& targets, double max_length,
      const RoutePrune* prune);
  double NodeDistanceImpl(NodeId from, NodeId to, double max_length,
                          const RoutePrune* prune);

 private:
  void RunDijkstra(NodeId source, const std::vector<NodeId>& target_nodes,
                   double max_length, const RoutePrune* prune);
  /// Reconstructs the intermediate segment chain ending at `node`.
  std::vector<SegmentId> BacktrackSegments(NodeId node) const;

  const RoadNetwork* net_;
  // Scratch: distance labels and parent segments, versioned by stamps to
  // avoid O(V) clearing per query.
  std::vector<double> dist_;
  std::vector<SegmentId> parent_seg_;
  std::vector<int> stamp_;
  std::vector<int> settled_stamp_;
  std::vector<NodeId> targets_scratch_;
  int current_stamp_ = 0;
};

/// Route distance helper used by trajectory-level features: length of the
/// shortest route between two segments, or `fallback` when unreachable.
double RouteLengthOr(SegmentRouter* router, SegmentId from, SegmentId to,
                     double max_length, double fallback);

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_SHORTEST_PATH_H_
