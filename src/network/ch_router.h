#ifndef LHMM_NETWORK_CH_ROUTER_H_
#define LHMM_NETWORK_CH_ROUTER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "network/contraction.h"
#include "network/shortest_path.h"

namespace lhmm::network {

/// Selects the shortest-path backend behind the matcher stack. `kDijkstra`
/// is the plain bounded SegmentRouter (no preprocessing); `kCH` routes
/// through a prebuilt contraction hierarchy (CHGraph + CHRouter) for the
/// same results at a fraction of the per-query search cost.
enum class RouterBackend {
  kDijkstra,
  kCH,
};

/// Parses "dijkstra" / "ch" (case-sensitive); returns false on anything else.
bool ParseRouterBackend(const std::string& text, RouterBackend* out);
const char* RouterBackendName(RouterBackend backend);

/// Contraction-hierarchy-accelerated router, bit-identical to SegmentRouter.
///
/// Design: rather than answering queries from the hierarchy directly (whose
/// shortcut-sum distances differ from Dijkstra's prefix sums in the last
/// ulps, and whose unpacked paths need not match Dijkstra's tie-breaks),
/// the hierarchy is used as a *corridor oracle*:
///
///  * A single multi-source backward pass over the downward CSR (heap-free:
///    down-edges traversed tail-ward strictly increase rank, so the cone is
///    a DAG and one cursor-DFS + reverse-post-order relaxation finishes it)
///    labels the goal set's upward closure with bt(v) = dist from v down to
///    the nearest goal, exact up to fp drift whenever that distance fits
///    the corridor cutoff.
///  * The exact bounded Dijkstra of SegmentRouter then runs with a
///    RoutePrune that skips any node v whose dist-so-far + reach(v)
///    exceeds the cutoff, where reach(v) ~= dist(v -> nearest goal) is
///    evaluated lazily: reach(v) = min(bt(v), min over upward edges
///    (v -> x) of w + reach(x)) is a recurrence over the upward DAG,
///    memoized per corridor, so only nodes the pruned search actually
///    touches (plus their upward cones) ever compute a label — there is no
///    per-query pass over the full node set. reach(source) > cutoff
///    refutes the whole query (every goal provably out of bound) without
///    touching the base graph at all.
///  * Single-goal queries (Route1 / NodeDistance — the path-expansion and
///    break-recovery pattern, which probes with bounds far above the
///    typical answer) first run a classic bidirectional CH search with
///    mu-pruning to estimate the true distance, then *tighten* the cutoff
///    from the caller's bound (up to 12 km) to that estimate plus slack.
///    Both the corridor build and the pruned search then work at
///    answer-scale instead of bound-scale.
///
/// The slack (relative 1e-9 + absolute 1e-2 m) dominates the floating-point
/// associativity drift between shortcut sums and edge-by-edge sums, so the
/// pruned search provably settles a superset of every node that can appear
/// on (or tie-break) a returned route; results — lengths, segment chains,
/// and nullopt-ness — are produced by the identical SegmentRouter code on
/// that subgraph and therefore match the unpruned search byte for byte
/// (enforced by tests/ch_test.cc across randomized networks).
///
/// Consecutive RouteMany calls with the same target set and bound (the HMM
/// column pattern: one call per predecessor candidate against one shared
/// candidate set) reuse the corridor labels and the reach memo, amortizing
/// step 1 across the whole column.
///
/// Not thread safe (same contract as SegmentRouter); CachedRouter pools
/// instances per concurrent query.
class CHRouter : public SegmentRouter {
 public:
  /// Both the network and the hierarchy must outlive the router, and `ch`
  /// must have been built from (or validated against) `net` — CHECK-enforced
  /// via the fingerprint.
  CHRouter(const RoadNetwork* net, const CHGraph* ch);

  std::optional<Route> Route1(SegmentId from, SegmentId to,
                              double max_length) override;
  std::vector<std::optional<Route>> RouteMany(
      SegmentId from, const std::vector<SegmentId>& targets,
      double max_length) override;
  double NodeDistance(NodeId from, NodeId to, double max_length) override;

  const CHGraph* ch() const { return ch_; }

  /// Diagnostics: corridors built from scratch vs reused across consecutive
  /// same-target-set queries.
  int64_t corridor_builds() const { return corridor_builds_; }
  int64_t corridor_reuses() const { return corridor_reuses_; }

 private:
  /// One multi-source backward pass over the downward CSR (traversed
  /// tail-ward, so ranks increase): labels the goal set's upward closure
  /// with bt(v) = distance to the nearest goal, exact up to fp drift for
  /// every node whose distance fits under `cutoff`. Heap-free: the closure
  /// is a DAG in rank order, so a cursor DFS emits a topological order and
  /// one relaxation pass finishes it.
  void BackwardUpwardSearch(const std::vector<NodeId>& goals, double cutoff);

  RoutePrune MakePrune(double cutoff) {
    return RoutePrune{reach_.data(), reach_stamp_.data(), reach_stamp_cur_,
                      cutoff, &CHRouter::MaterializeReach, this};
  }
  static double MaterializeReach(void* ctx, NodeId v) {
    return static_cast<CHRouter*>(ctx)->ReachOf(v);
  }

  /// Lazy memoized reach label: reach(v) = min(bt(v), min over upward edges
  /// (v -> x) of w + reach(x)), evaluated with an explicit stack over the
  /// upward DAG (heads strictly outrank tails, so it terminates).
  double ReachOf(NodeId v);

  /// Ensures backward cones + collapsed bt labels for `goals` (sorted,
  /// deduped) at `cutoff`, reusing the previous corridor (including its
  /// reach memo) when the key matches.
  void EnsureCorridor(const std::vector<NodeId>& goals, double cutoff);

  const CHGraph* ch_;

  // Collapsed backward labels (distance to nearest goal), stamp-versioned.
  std::vector<double> bt_;
  std::vector<int> bt_stamp_;
  int bt_stamp_cur_ = 0;
  // Cursor-DFS scratch for the corridor build (visited marks + stack).
  std::vector<int> visit_stamp_;
  int visit_stamp_cur_ = 0;
  struct DfsFrame {
    NodeId u;
    int32_t i;  // Cursor into the CSR being walked.
  };
  std::vector<DfsFrame> dfs_frames_;
  std::vector<NodeId> order_;
  // Reach (corridor) memo.
  std::vector<double> reach_;
  std::vector<int> reach_stamp_;
  int reach_stamp_cur_ = 0;
  struct ReachFrame {
    NodeId u;
    int32_t i;  // Cursor into the upward CSR.
    double r;   // Running minimum.
  };
  std::vector<ReachFrame> reach_frames_;

  // Corridor-reuse key.
  std::vector<NodeId> corridor_goals_;
  double corridor_cutoff_ = -1.0;
  bool corridor_valid_ = false;

  std::vector<NodeId> goals_scratch_;
  int64_t corridor_builds_ = 0;
  int64_t corridor_reuses_ = 0;
};

}  // namespace lhmm::network

#endif  // LHMM_NETWORK_CH_ROUTER_H_
