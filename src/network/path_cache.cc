#include "network/path_cache.h"

#include "core/logging.h"
#include "network/ch_router.h"

namespace lhmm::network {

CachedRouter::CachedRouter(SegmentRouter* router, int num_shards)
    : net_(router->network()) {
  CHECK(router != nullptr);
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
  free_routers_.push_back(router);
}

CachedRouter::CachedRouter(const RoadNetwork* net, int num_shards) : net_(net) {
  CHECK(net != nullptr);
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

CachedRouter::CachedRouter(const RoadNetwork* net, const CHGraph* ch,
                           int num_shards)
    : net_(net), ch_(ch) {
  CHECK(net != nullptr);
  CHECK(ch != nullptr);
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

SegmentRouter* CachedRouter::AcquireRouter() {
  std::unique_lock<std::mutex> lock(pool_mu_);
  if (!free_routers_.empty()) {
    SegmentRouter* r = free_routers_.back();
    free_routers_.pop_back();
    return r;
  }
  if (ch_ != nullptr) {
    owned_routers_.push_back(std::make_unique<CHRouter>(net_, ch_));
  } else {
    owned_routers_.push_back(std::make_unique<SegmentRouter>(net_));
  }
  return owned_routers_.back().get();
}

void CachedRouter::ReleaseRouter(SegmentRouter* router) {
  std::unique_lock<std::mutex> lock(pool_mu_);
  free_routers_.push_back(router);
}

size_t CachedRouter::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

void CachedRouter::Clear() {
  for (const auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

void CachedRouter::WarmAll(const GridIndex& index, double radius) {
  const RoadNetwork& net = *index.network();
  std::vector<SegmentId> targets;
  for (SegmentId from = 0; from < net.num_segments(); ++from) {
    const geo::Polyline& geom = net.segment(from).geometry;
    const geo::Point mid = geom.PointAt(geom.Length() / 2.0);
    targets.clear();
    for (const SegmentHit& hit : index.Query(mid, radius)) {
      targets.push_back(hit.segment);
    }
    (void)RouteMany(from, targets, radius * 2.0);
  }
}

std::optional<Route> CachedRouter::Route1(SegmentId from, SegmentId to,
                                          double max_length) {
  std::vector<std::optional<Route>> routes = RouteMany(from, {to}, max_length);
  return std::move(routes[0]);
}

std::vector<std::optional<Route>> CachedRouter::RouteMany(
    SegmentId from, const std::vector<SegmentId>& targets, double max_length) {
  std::vector<std::optional<Route>> out(targets.size());
  std::vector<SegmentId> missing;
  std::vector<size_t> missing_pos;
  int64_t hit_count = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    const uint64_t key = Key(from, targets[i]);
    Shard& shard = ShardOf(key);
    std::unique_lock<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end() &&
        (it->second.route.has_value() || it->second.bound >= max_length)) {
      // A found route is valid for any bound >= its length; a negative entry
      // is only valid if it was computed with at least this bound.
      if (it->second.route.has_value() && it->second.route->length > max_length) {
        // Route exists but exceeds the caller's bound.
        ++hit_count;
        continue;
      }
      out[i] = it->second.route;
      ++hit_count;
      continue;
    }
    lock.unlock();
    missing.push_back(targets[i]);
    missing_pos.push_back(i);
  }
  if (hit_count > 0) hits_.fetch_add(hit_count, std::memory_order_relaxed);
  if (!missing.empty()) {
    misses_.fetch_add(static_cast<int64_t>(missing.size()),
                      std::memory_order_relaxed);
    SegmentRouter* router = AcquireRouter();
    std::vector<std::optional<Route>> fresh =
        router->RouteMany(from, missing, max_length);
    ReleaseRouter(router);
    for (size_t j = 0; j < missing.size(); ++j) {
      const uint64_t key = Key(from, missing[j]);
      Shard& shard = ShardOf(key);
      {
        std::unique_lock<std::mutex> lock(shard.mu);
        // Concurrent fills of one key are benign (Dijkstra is deterministic),
        // but never let a tighter-bound negative overwrite a found route.
        Entry& entry = shard.map[key];
        if (!entry.route.has_value() || fresh[j].has_value()) {
          entry = Entry{fresh[j], max_length};
        }
      }
      out[missing_pos[j]] = std::move(fresh[j]);
    }
  }
  return out;
}

}  // namespace lhmm::network
