#include "network/path_cache.h"

namespace lhmm::network {

void CachedRouter::WarmAll(const GridIndex& index, double radius) {
  const RoadNetwork& net = *index.network();
  std::vector<SegmentId> targets;
  for (SegmentId from = 0; from < net.num_segments(); ++from) {
    const geo::Polyline& geom = net.segment(from).geometry;
    const geo::Point mid = geom.PointAt(geom.Length() / 2.0);
    targets.clear();
    for (const SegmentHit& hit : index.Query(mid, radius)) {
      targets.push_back(hit.segment);
    }
    (void)RouteMany(from, targets, radius * 2.0);
  }
}

std::optional<Route> CachedRouter::Route1(SegmentId from, SegmentId to,
                                          double max_length) {
  std::vector<std::optional<Route>> routes = RouteMany(from, {to}, max_length);
  return std::move(routes[0]);
}

std::vector<std::optional<Route>> CachedRouter::RouteMany(
    SegmentId from, const std::vector<SegmentId>& targets, double max_length) {
  std::vector<std::optional<Route>> out(targets.size());
  std::vector<SegmentId> missing;
  std::vector<size_t> missing_pos;
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto it = cache_.find(Key(from, targets[i]));
    if (it != cache_.end() &&
        (it->second.route.has_value() || it->second.bound >= max_length)) {
      // A found route is valid for any bound >= its length; a negative entry
      // is only valid if it was computed with at least this bound.
      if (it->second.route.has_value() && it->second.route->length > max_length) {
        // Route exists but exceeds the caller's bound.
        ++hits_;
        continue;
      }
      out[i] = it->second.route;
      ++hits_;
      continue;
    }
    missing.push_back(targets[i]);
    missing_pos.push_back(i);
  }
  if (!missing.empty()) {
    misses_ += static_cast<int64_t>(missing.size());
    std::vector<std::optional<Route>> fresh =
        router_->RouteMany(from, missing, max_length);
    for (size_t j = 0; j < missing.size(); ++j) {
      cache_[Key(from, missing[j])] = Entry{fresh[j], max_length};
      out[missing_pos[j]] = std::move(fresh[j]);
    }
  }
  return out;
}

}  // namespace lhmm::network
