#include "hmm/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/logging.h"
#include <cstdio>
#include <cstdlib>

namespace lhmm::hmm {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

Engine::Engine(const network::RoadNetwork* net, network::CachedRouter* router,
               ObservationModel* obs, TransitionModel* trans,
               const EngineConfig& config)
    : net_(net), router_(router), obs_(obs), trans_(trans), config_(config) {
  CHECK(net != nullptr);
  CHECK(router != nullptr);
  CHECK(obs != nullptr);
  CHECK(trans != nullptr);
}

double Engine::RouteBound(double straight_dist) const {
  return std::min(config_.max_route_bound,
                  config_.route_bound_alpha * straight_dist +
                      config_.route_bound_beta);
}

EngineResult Engine::Match(const traj::Trajectory& t) {
  EngineResult result;
  if (t.empty()) return result;

  obs_->BeginTrajectory(t);
  trans_->BeginTrajectory(t);

  // Step 1: candidate preparation. Points with no candidates in range are
  // dropped from the DP (they count as misses in the hitting ratio).
  std::vector<CandidateSet> cands;
  std::vector<int> point_index;
  for (int i = 0; i < t.size(); ++i) {
    CandidateSet cs = obs_->Candidates(t, i, config_.k);
    if (cs.empty()) continue;
    cands.push_back(std::move(cs));
    point_index.push_back(i);
  }
  const int m = static_cast<int>(cands.size());
  if (m == 0) return result;

  // Straight-line hop between consecutive retained points, for Eq. (3)-style
  // features and for the route search bound.
  std::vector<double> straight(m, 0.0);
  for (int s = 1; s < m; ++s) {
    straight[s] =
        geo::Distance(t[point_index[s - 1]].pos, t[point_index[s]].pos);
  }

  // Step 2+3: forward Viterbi (Algorithm 1) with the shortcut optimization
  // (Algorithm 2) interleaved: after filling f/pre for step s from C_{s-1},
  // shortcuts from C_{s-2} may improve f[s] before step s+1 reads it. This
  // strictly dominates the paper's run-Alg2-after-Alg1 formulation (no stale
  // f entries) while evaluating the same Eq. (20)-(21) scores.
  std::vector<std::vector<double>> f(m);
  std::vector<std::vector<int>> pre(m);
  f[0].resize(cands[0].size());
  pre[0].assign(cands[0].size(), -1);
  for (size_t j = 0; j < cands[0].size(); ++j) {
    f[0][j] = cands[0][j].observation;  // Algorithm 1 line 5.
  }

  // Transition weights W(c_{s-1}^j -> c_s^k2) over the *original*
  // (pre-shortcut) candidate sets; Eq. (20) consumes these. Algorithm 2 at
  // step s only ever reads the matrices of steps s-1 and s, so two flat
  // arenas rotate instead of keeping the whole per-step history: O(k^2)
  // resident weights instead of O(m * k^2), reused across columns.
  for (int s = 1; s < m; ++s) {
    const int prev_n = static_cast<int>(cands[s - 1].size());
    const int cur_n = static_cast<int>(cands[s].size());
    const double bound = RouteBound(straight[s]);

    cur_segments_.resize(cur_n);
    for (int k2 = 0; k2 < cur_n; ++k2) cur_segments_[k2] = cands[s][k2].segment;

    f[s].assign(cur_n, kNegInf);
    pre[s].assign(cur_n, -1);
    std::swap(w_prev_, w_cur_);
    w_cur_.Reset(prev_n, cur_n);

    // Phase 1: fill the weight arena (one RouteMany per predecessor over the
    // shared target list — the column shape CHRouter's corridor reuse keys
    // on). Model calls happen in the same (j, k2) order as the fused loop
    // they replace, so stateful models observe an identical call sequence.
    for (int j = 0; j < prev_n; ++j) {
      const Candidate& prev = cands[s - 1][j];
      const std::vector<std::optional<network::Route>> routes =
          router_->RouteMany(prev.segment, cur_segments_, bound);
      for (int k2 = 0; k2 < cur_n; ++k2) {
        const Candidate& cur = cands[s][k2];
        const network::Route* route =
            routes[k2].has_value() ? &routes[k2].value() : nullptr;
        const double pt = trans_->Transition(t, point_index[s - 1], point_index[s],
                                             prev, cur, route, straight[s]);
        const double weight = pt * cur.observation;  // Eq. (13).
        w_cur_.Set(j, k2, weight, route != nullptr);
      }
    }
    // Phase 2: the batched column update, Eq. (16)-(17) in one tight pass.
    ViterbiColumnSoA(w_cur_, f[s - 1].data(), f[s].data(), pre[s].data());

    if (config_.use_shortcuts && s >= 2) {
      ShortcutPass(t, s, point_index, &cands, w_prev_, w_cur_, &f, &pre);
    }

    // HMM-break recovery (Newson–Krumm-style split): when no candidate of
    // step s is reachable from step s-1 — a gap too long for any transition,
    // or a routing hole/outage — the whole tail of the DP would stay at -inf
    // and the backward pass would emit garbage. Instead, restart Viterbi
    // here exactly as at step 0 (score = observation, no predecessor); the
    // backward pass already treats pre = -1 as a restart, so the trajectory
    // splits into independently matched sub-paths stitched by ExpandPath.
    // On break-free input no column is all -inf and nothing changes.
    bool reachable = false;
    for (const double v : f[s]) {
      if (v != kNegInf) {
        reachable = true;
        break;
      }
    }
    if (!reachable) {
      for (size_t k2 = 0; k2 < cands[s].size(); ++k2) {
        f[s][k2] = cands[s][k2].observation;
      }
      result.breaks.push_back(s);
      result.gap_seconds += t[point_index[s]].t - t[point_index[s - 1]].t;
    }
  }

  // Backward pass: Eq. (18)-(19).
  int best_last = 0;
  for (size_t j = 1; j < f[m - 1].size(); ++j) {
    if (f[m - 1][j] > f[m - 1][best_last]) best_last = static_cast<int>(j);
  }
  std::vector<int> chosen(m, -1);
  chosen[m - 1] = best_last;
  for (int s = m - 1; s > 0; --s) {
    int p = pre[s][chosen[s]];
    if (p < 0) {
      // Disconnected step: restart from this point's best candidate.
      p = 0;
      for (size_t j = 1; j < f[s - 1].size(); ++j) {
        if (f[s - 1][j] > f[s - 1][p]) p = static_cast<int>(j);
      }
    }
    chosen[s - 1] = p;
  }

  std::vector<Candidate> chain(m);
  for (int s = 0; s < m; ++s) chain[s] = cands[s][chosen[s]];

  result.candidates = std::move(cands);
  result.point_index = point_index;
  result.matched.resize(m);
  for (int s = 0; s < m; ++s) result.matched[s] = chain[s].segment;
  result.path = ExpandPath(chain, straight);
  const double span = t[point_index[m - 1]].t - t[point_index[0]].t;
  result.gap_coverage =
      span > 0.0 ? std::max(0.0, 1.0 - result.gap_seconds / span) : 1.0;
  return result;
}

void Engine::ShortcutPass(const traj::Trajectory& t, int s,
                          const std::vector<int>& point_index,
                          std::vector<CandidateSet>* cands,
                          const WeightMatrix& w_prev, const WeightMatrix& w_cur,
                          std::vector<std::vector<double>>* f,
                          std::vector<std::vector<int>>* pre) {
  // Original candidate counts: w matrices were built over these.
  const int njj = w_prev.rows;  // |C_{s-2}| original.
  const int nl = w_prev.cols;   // |C_{s-1}| original.
  const int nk = w_cur.cols;
  if (njj == 0 || nl == 0 || nk == 0) return;

  const double straight_02 =
      geo::Distance(t[point_index[s - 2]].pos, t[point_index[s]].pos);
  const double straight_01 =
      geo::Distance(t[point_index[s - 2]].pos, t[point_index[s - 1]].pos);
  const double straight_12 =
      geo::Distance(t[point_index[s - 1]].pos, t[point_index[s]].pos);
  const double bound = RouteBound(straight_02);

  for (int k2 = 0; k2 < nk; ++k2) {
    const Candidate cur = (*cands)[s][k2];
    // Eq. (20): rank one-hop predecessors j by the best two-step move
    // max_l W(j->l) + W(l->k2). We additionally include the accumulated
    // score f[c_{s-2}^j]: Eq. (21) charges the shortcut against f of the
    // predecessor, so "best one-hop predecessor" (Algorithm 2 line 3) must
    // account for how good the path *to* j is — otherwise, at exactly the
    // noisy points shortcuts exist for (where every W is ~0), the argmax
    // degenerates to noise and the shortcut can never win.
    std::vector<std::pair<double, int>> scored;
    scored.reserve(njj);
    for (int j = 0; j < njj; ++j) {
      double best = kNegInf;
      for (int l = 0; l < nl; ++l) {
        best = std::max(best, w_prev.At(j, l) + w_cur.At(l, k2));
      }
      scored.push_back({(*f)[s - 2][j] + best, j});
    }
    const int take = std::min(config_.num_shortcuts, njj);
    std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                      [](const auto& a, const auto& b) { return a.first > b.first; });

    for (int rank = 0; rank < take; ++rank) {
      const int j = scored[rank].second;
      const Candidate& origin = (*cands)[s - 2][j];
      // Shortcut: shortest path c_{s-2}^j -> c_s^k2.
      const std::optional<network::Route> sp =
          router_->Route1(origin.segment, cur.segment, bound);
      if (!sp.has_value()) continue;
      // Project x_{s-1} onto the shortcut path: nearest segment in it.
      const geo::Point& mid_pos = t[point_index[s - 1]].pos;
      network::SegmentId u_seg = network::kInvalidSegment;
      double u_dist = std::numeric_limits<double>::infinity();
      for (network::SegmentId sid : sp->segments) {
        const double d = net_->segment(sid).geometry.Project(mid_pos).dist;
        if (d < u_dist) {
          u_dist = d;
          u_seg = sid;
        }
      }
      if (u_seg == network::kInvalidSegment) continue;
      Candidate u = obs_->MakeCandidate(t, point_index[s - 1], u_seg);
      u.from_shortcut = true;

      // Eq. (21): restore the skipped transition through the projected road.
      const std::optional<network::Route> leg1 =
          router_->Route1(origin.segment, u_seg, bound);
      const std::optional<network::Route> leg2 =
          router_->Route1(u_seg, cur.segment, bound);
      const network::Route* leg1p = leg1.has_value() ? &leg1.value() : nullptr;
      const network::Route* leg2p = leg2.has_value() ? &leg2.value() : nullptr;
      const double w1 = trans_->Transition(t, point_index[s - 2],
                                           point_index[s - 1], origin, u, leg1p,
                                           straight_01) *
                        u.observation;
      const double w2 = trans_->Transition(t, point_index[s - 1], point_index[s],
                                           u, cur, leg2p, straight_12) *
                        cur.observation;
      if (leg1p == nullptr || leg2p == nullptr) continue;
      const double f_prime = (*f)[s - 2][j] + w1 + w2;
      if (getenv("LHMM_DEBUG_SC")) {
        // Per-instance counters: engines run concurrently in batch matching,
        // so diagnostics must never live in shared statics.
        ++sc_evaluated_;
        if (f_prime > (*f)[s][k2]) ++sc_improved_;
        if (sc_evaluated_ % 5000 == 0)
          fprintf(stderr, "SC total=%lld wins=%lld\n",
                  static_cast<long long>(sc_evaluated_),
                  static_cast<long long>(sc_improved_));
      }
      if (f_prime > (*f)[s][k2]) {
        // Append the projected candidate to C_{s-1} and relink the tables.
        (*cands)[s - 1].push_back(u);
        const int u_idx = static_cast<int>((*cands)[s - 1].size()) - 1;
        (*f)[s - 1].push_back((*f)[s - 2][j] + w1);
        (*pre)[s - 1].push_back(j);
        (*f)[s][k2] = f_prime;
        (*pre)[s][k2] = u_idx;
        ++shortcuts_applied_;
      }
    }
  }
}

std::vector<network::SegmentId> Engine::ExpandPath(
    const std::vector<Candidate>& chain, const std::vector<double>& straight) {
  std::vector<network::SegmentId> path;
  if (chain.empty()) return path;
  path.push_back(chain[0].segment);
  for (size_t s = 1; s < chain.size(); ++s) {
    const double bound = RouteBound(straight[s]);
    const std::optional<network::Route> route =
        router_->Route1(chain[s - 1].segment, chain[s].segment,
                        std::max(bound, config_.route_bound_beta));
    if (route.has_value()) {
      for (network::SegmentId sid : route->segments) {
        if (path.back() != sid) path.push_back(sid);
      }
    } else if (path.back() != chain[s].segment) {
      path.push_back(chain[s].segment);  // Discontinuity; keep going.
    }
  }
  // Remove immediate backtracks (a->b->a) that expansion can introduce.
  std::vector<network::SegmentId> cleaned;
  for (network::SegmentId sid : path) {
    if (!cleaned.empty() && cleaned.back() == sid) continue;
    cleaned.push_back(sid);
  }
  return cleaned;
}

}  // namespace lhmm::hmm
