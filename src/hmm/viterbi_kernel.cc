#include "hmm/viterbi_kernel.h"

#include <limits>

namespace lhmm::hmm {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

void ViterbiColumnSoA(const WeightMatrix& w, const double* f_prev,
                      double* f_cur, int* pre_cur) {
  const int rows = w.rows, cols = w.cols;
  for (int k = 0; k < cols; ++k) {
    f_cur[k] = kNegInf;
    pre_cur[k] = -1;
  }
  const double* row_w = w.w.data();
  const uint8_t* row_reach = w.reach.data();
  for (int j = 0; j < rows; ++j, row_w += cols, row_reach += cols) {
    const double fj = f_prev[j];
    if (fj == kNegInf) continue;  // All its scores are -inf: cannot win.
    for (int k = 0; k < cols; ++k) {
      if (!row_reach[k]) continue;
      const double score = fj + row_w[k];
      if (score > f_cur[k]) {
        f_cur[k] = score;
        pre_cur[k] = j;
      }
    }
  }
}

void ViterbiColumnReference(const WeightMatrix& w, const double* f_prev,
                            double* f_cur, int* pre_cur) {
  for (int k = 0; k < w.cols; ++k) {
    f_cur[k] = kNegInf;
    pre_cur[k] = -1;
  }
  for (int j = 0; j < w.rows; ++j) {
    for (int k = 0; k < w.cols; ++k) {
      if (!w.Reachable(j, k)) continue;  // Unreachable move.
      const double score = f_prev[j] + w.At(j, k);  // Eq. (16).
      if (score > f_cur[k]) {
        f_cur[k] = score;
        pre_cur[k] = j;  // Eq. (17).
      }
    }
  }
}

}  // namespace lhmm::hmm
