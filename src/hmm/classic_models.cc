#include "hmm/classic_models.h"

#include <algorithm>
#include <cmath>

namespace lhmm::hmm {

GaussianObservationModel::GaussianObservationModel(const network::GridIndex* index,
                                                   const ClassicModelConfig& config)
    : index_(index), config_(config) {}

double GaussianObservationModel::Score(double dist) const {
  const double z = dist / config_.obs_sigma;
  return std::exp(-0.5 * z * z);
}

CandidateSet GaussianObservationModel::Candidates(const traj::Trajectory& t, int i,
                                                  int k) {
  const std::vector<network::SegmentHit> hits =
      index_->Query(t[i].pos, config_.search_radius);
  CandidateSet out;
  out.reserve(std::min<size_t>(hits.size(), k));
  for (const network::SegmentHit& hit : hits) {
    if (static_cast<int>(out.size()) >= k) break;
    Candidate c;
    c.segment = hit.segment;
    c.dist = hit.dist;
    c.closest = hit.closest;
    c.observation = Score(hit.dist);
    out.push_back(c);
  }
  return out;  // Query() returns hits sorted by distance = descending score.
}

Candidate GaussianObservationModel::MakeCandidate(const traj::Trajectory& t, int i,
                                                  network::SegmentId segment) {
  const geo::PolylineProjection proj =
      index_->network()->segment(segment).geometry.Project(t[i].pos);
  Candidate c;
  c.segment = segment;
  c.dist = proj.dist;
  c.closest = proj.point;
  c.observation = Score(proj.dist);
  return c;
}

ClassicTransitionModel::ClassicTransitionModel(const ClassicModelConfig& config,
                                               const network::RoadNetwork* net)
    : config_(config), net_(net) {}

double ClassicTransitionModel::TemporalFactor(const traj::Trajectory& t,
                                              int prev_index, int cur_index,
                                              const network::Route& route) const {
  if (net_ == nullptr || route.segments.empty()) return 1.0;
  const double dt = t[cur_index].t - t[prev_index].t;
  if (dt <= 1.0) return 1.0;
  const double v = route.length / dt;
  double limit_sum = 0.0;
  for (network::SegmentId sid : route.segments) {
    limit_sum += net_->segment(sid).speed_limit;
  }
  const double v_lim = limit_sum / static_cast<double>(route.segments.size());
  return std::exp(-std::max(0.0, v - v_lim) / 5.0);
}

double ClassicTransitionModel::Transition(const traj::Trajectory& t, int prev_index,
                                          int cur_index, const Candidate& prev,
                                          const Candidate& cur,
                                          const network::Route* route,
                                          double straight_dist) {
  if (route == nullptr) return 0.0;
  const double diff = std::fabs(straight_dist - route->length);
  return std::exp(-diff / config_.trans_beta) *
         TemporalFactor(t, prev_index, cur_index, *route);
}

}  // namespace lhmm::hmm
