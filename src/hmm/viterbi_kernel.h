#ifndef LHMM_HMM_VITERBI_KERNEL_H_
#define LHMM_HMM_VITERBI_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lhmm::hmm {

/// Flat row-major arena for one Viterbi column's transition weights.
/// Entry (j, k) holds W(c_{s-1}^j -> c_s^k) of Eq. (13); `reach` marks the
/// pairs a route existed for (weights are stored for *all* pairs — the
/// shortcut pass of Algorithm 2 ranks predecessors over the full matrix,
/// reachable or not, exactly as the nested-vector representation did).
///
/// One arena is reused across columns (Reset keeps capacity), replacing the
/// per-column vector<vector<double>> whose row headers and scattered
/// allocations dominated the old column update's cache behavior.
struct WeightMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<double> w;
  std::vector<uint8_t> reach;

  void Reset(int r, int c) {
    rows = r;
    cols = c;
    w.assign(static_cast<size_t>(r) * c, 0.0);
    reach.assign(static_cast<size_t>(r) * c, 0);
  }
  double At(int j, int k) const { return w[static_cast<size_t>(j) * cols + k]; }
  void Set(int j, int k, double weight, bool reachable) {
    const size_t i = static_cast<size_t>(j) * cols + k;
    w[i] = weight;
    reach[i] = reachable ? 1 : 0;
  }
  bool Reachable(int j, int k) const {
    return reach[static_cast<size_t>(j) * cols + k] != 0;
  }
};

/// Structure-of-arrays Viterbi column update (Eq. (16)-(17)): given the
/// scores f_prev[0..rows) of step s-1 and the weight arena of step s,
/// fills f_cur[0..cols) = max_j f_prev[j] + w(j, k) over reachable pairs
/// and pre_cur[k] = the arg max (-inf / -1 where nothing reaches k).
///
/// Bit-compatible with the scalar reference below — same j-ascending,
/// k-ascending evaluation order, same strict-> tie-break keeping the first
/// maximizer — but runs one tight loop per row over contiguous memory with
/// f_prev[j] hoisted, skipping rows whose f_prev is -inf outright (such a
/// row's scores are all -inf and can never displace anything, so the skip
/// is exact, not approximate).
void ViterbiColumnSoA(const WeightMatrix& w, const double* f_prev,
                      double* f_cur, int* pre_cur);

/// The pre-SoA scalar formulation, kept verbatim as the semantics anchor:
/// tests/hmm_test.cc pins the SoA kernel to it on random matrices, including
/// all--inf break columns. Not used on the hot path.
void ViterbiColumnReference(const WeightMatrix& w, const double* f_prev,
                            double* f_cur, int* pre_cur);

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_VITERBI_KERNEL_H_
