#include "hmm/online.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"

namespace lhmm::hmm {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

OnlineMatcher::OnlineMatcher(const network::RoadNetwork* net,
                             network::CachedRouter* router, ObservationModel* obs,
                             TransitionModel* trans, const OnlineConfig& config)
    : net_(net), router_(router), obs_(obs), trans_(trans), config_(config) {
  CHECK(net != nullptr);
  CHECK(router != nullptr);
  CHECK(obs != nullptr);
  CHECK(trans != nullptr);
  CHECK_GE(config.lag, 0);
}

void OnlineMatcher::Reset() {
  window_.clear();
  has_anchor_ = false;
  committed_.clear();
}

std::vector<network::SegmentId> OnlineMatcher::Push(const traj::TrajPoint& point) {
  window_.push_back(point);
  if (static_cast<int>(window_.size()) <= config_.lag) return {};
  return Advance(/*flush=*/false);
}

std::vector<network::SegmentId> OnlineMatcher::Finish() {
  std::vector<network::SegmentId> out;
  while (!window_.empty()) {
    const std::vector<network::SegmentId> emitted = Advance(/*flush=*/true);
    out.insert(out.end(), emitted.begin(), emitted.end());
    if (emitted.empty() && !window_.empty()) {
      // Unmatchable head (no candidates anywhere); drop it to make progress.
      window_.pop_front();
    }
  }
  return out;
}

std::vector<network::SegmentId> OnlineMatcher::Emit(const Candidate& next,
                                                    double straight) {
  std::vector<network::SegmentId> added;
  if (!has_anchor_) {
    added.push_back(next.segment);
  } else {
    const double bound =
        std::min(config_.max_route_bound,
                 config_.route_bound_alpha * straight + config_.route_bound_beta);
    const auto route = router_->Route1(anchor_.segment, next.segment, bound);
    if (route.has_value()) {
      for (network::SegmentId sid : route->segments) {
        if (committed_.empty() || committed_.back() != sid) added.push_back(sid);
      }
    } else if (committed_.empty() || committed_.back() != next.segment) {
      added.push_back(next.segment);
    }
    // Avoid duplicating the anchor segment already present in committed_.
    if (!added.empty() && !committed_.empty() && added.front() == committed_.back()) {
      added.erase(added.begin());
    }
  }
  committed_.insert(committed_.end(), added.begin(), added.end());
  return added;
}

std::vector<network::SegmentId> OnlineMatcher::Advance(bool flush) {
  if (window_.empty()) return {};

  // Build the windowed trajectory (models see the causal window only).
  traj::Trajectory t;
  t.points.assign(window_.begin(), window_.end());
  obs_->BeginTrajectory(t);
  trans_->BeginTrajectory(t);

  // Candidate sets over the window.
  std::vector<CandidateSet> cands;
  std::vector<int> point_index;
  for (int i = 0; i < t.size(); ++i) {
    CandidateSet cs = obs_->Candidates(t, i, config_.k);
    if (cs.empty()) continue;
    cands.push_back(std::move(cs));
    point_index.push_back(i);
  }
  if (cands.empty()) {
    // Nothing matchable in the window; drop the head to make progress.
    window_.pop_front();
    return {};
  }
  const int m = static_cast<int>(cands.size());

  // Forward DP. The first scored point additionally pays the transition from
  // the committed anchor, which pins continuity across commits.
  std::vector<std::vector<double>> f(m);
  std::vector<std::vector<int>> pre(m);
  f[0].assign(cands[0].size(), 0.0);
  pre[0].assign(cands[0].size(), -1);
  for (size_t j = 0; j < cands[0].size(); ++j) {
    double score = cands[0][j].observation;
    if (has_anchor_) {
      const double straight =
          geo::Distance(anchor_point_.pos, t[point_index[0]].pos);
      const double bound =
          std::min(config_.max_route_bound,
                   config_.route_bound_alpha * straight + config_.route_bound_beta);
      const auto route = router_->Route1(anchor_.segment, cands[0][j].segment, bound);
      const network::Route* rp = route.has_value() ? &route.value() : nullptr;
      // prev_index 0 is a stand-in: the anchor point is no longer in `t`, so
      // models that read timestamps see the window head (conservative).
      const double pt = trans_->Transition(t, point_index[0], point_index[0],
                                           anchor_, cands[0][j], rp, straight);
      score = (rp == nullptr ? kNegInf : pt * cands[0][j].observation);
    }
    f[0][j] = score;
  }
  for (int s = 1; s < m; ++s) {
    const double straight =
        geo::Distance(t[point_index[s - 1]].pos, t[point_index[s]].pos);
    const double bound =
        std::min(config_.max_route_bound,
                 config_.route_bound_alpha * straight + config_.route_bound_beta);
    f[s].assign(cands[s].size(), kNegInf);
    pre[s].assign(cands[s].size(), -1);
    std::vector<network::SegmentId> targets(cands[s].size());
    for (size_t k2 = 0; k2 < cands[s].size(); ++k2) {
      targets[k2] = cands[s][k2].segment;
    }
    for (size_t j = 0; j < cands[s - 1].size(); ++j) {
      if (f[s - 1][j] == kNegInf) continue;
      const auto routes =
          router_->RouteMany(cands[s - 1][j].segment, targets, bound);
      for (size_t k2 = 0; k2 < cands[s].size(); ++k2) {
        if (!routes[k2].has_value()) continue;
        const double pt =
            trans_->Transition(t, point_index[s - 1], point_index[s],
                               cands[s - 1][j], cands[s][k2], &routes[k2].value(),
                               straight);
        const double score = f[s - 1][j] + pt * cands[s][k2].observation;
        if (score > f[s][k2]) {
          f[s][k2] = score;
          pre[s][k2] = static_cast<int>(j);
        }
      }
    }
  }

  // Backtrack from the best terminal to find the head's candidate.
  int best = 0;
  for (size_t j = 1; j < f[m - 1].size(); ++j) {
    if (f[m - 1][j] > f[m - 1][best]) best = static_cast<int>(j);
  }
  if (f[m - 1][best] == kNegInf) {
    // Entire window unreachable from the anchor: drop the anchor pin.
    has_anchor_ = false;
    window_.pop_front();
    return {};
  }
  std::vector<int> chain(m);
  chain[m - 1] = best;
  for (int s = m - 1; s > 0; --s) {
    int p = pre[s][chain[s]];
    if (p < 0) {
      p = 0;
      for (size_t j = 1; j < f[s - 1].size(); ++j) {
        if (f[s - 1][j] > f[s - 1][p]) p = static_cast<int>(j);
      }
    }
    chain[s - 1] = p;
  }

  // Commit the head point's candidate and slide the window.
  const Candidate head = cands[0][chain[0]];
  const double straight =
      has_anchor_ ? geo::Distance(anchor_point_.pos, t[point_index[0]].pos) : 0.0;
  std::vector<network::SegmentId> emitted = Emit(head, straight);
  anchor_ = head;
  anchor_point_ = t[point_index[0]];
  has_anchor_ = true;
  // Drop everything up to and including the head's original point.
  for (int drop = 0; drop <= point_index[0]; ++drop) window_.pop_front();
  (void)flush;
  return emitted;
}

}  // namespace lhmm::hmm
