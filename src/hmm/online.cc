#include "hmm/online.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"

namespace lhmm::hmm {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

OnlineMatcher::OnlineMatcher(const network::RoadNetwork* net,
                             network::CachedRouter* router, ObservationModel* obs,
                             TransitionModel* trans, const OnlineConfig& config)
    : net_(net), router_(router), obs_(obs), trans_(trans), config_(config) {
  CHECK(net != nullptr);
  CHECK(router != nullptr);
  CHECK(obs != nullptr);
  CHECK(trans != nullptr);
  CHECK_GE(config.lag, 0);
}

void OnlineMatcher::Reset() {
  window_.clear();
  has_anchor_ = false;
  committed_.clear();
  pushed_ = 0;
  consumed_ = 0;
  breaks_ = 0;
}

OnlineCheckpoint OnlineMatcher::Checkpoint() const {
  OnlineCheckpoint cp;
  cp.has_anchor = has_anchor_;
  cp.anchor = anchor_;
  cp.anchor_point = anchor_point_;
  cp.window.assign(window_.begin(), window_.end());
  cp.committed = committed_;
  cp.pushed = pushed_;
  cp.consumed = consumed_;
  cp.breaks = breaks_;
  return cp;
}

void OnlineMatcher::Restore(const OnlineCheckpoint& cp) {
  has_anchor_ = cp.has_anchor;
  anchor_ = cp.anchor;
  anchor_point_ = cp.anchor_point;
  window_.assign(cp.window.begin(), cp.window.end());
  committed_ = cp.committed;
  pushed_ = cp.pushed;
  consumed_ = cp.consumed;
  breaks_ = cp.breaks;
}

double OnlineMatcher::RouteBound(double straight_dist) const {
  return std::min(config_.max_route_bound,
                  config_.route_bound_alpha * straight_dist +
                      config_.route_bound_beta);
}

std::vector<network::SegmentId> OnlineMatcher::Push(const traj::TrajPoint& point) {
  window_.push_back(point);
  ++pushed_;
  std::vector<network::SegmentId> out;
  while (static_cast<int>(window_.size()) > config_.lag) {
    const size_t before = window_.size();
    const std::vector<network::SegmentId> emitted = Advance(/*flush=*/false);
    out.insert(out.end(), emitted.begin(), emitted.end());
    if (window_.size() >= before) break;  // Defensive: Advance made no progress.
  }
  return out;
}

std::vector<network::SegmentId> OnlineMatcher::Finish() {
  std::vector<network::SegmentId> out;
  while (!window_.empty()) {
    const size_t before = window_.size();
    const std::vector<network::SegmentId> emitted = Advance(/*flush=*/true);
    out.insert(out.end(), emitted.begin(), emitted.end());
    if (window_.size() >= before) {
      // Defensive: Advance consumes at least one point on every path, so this
      // is unreachable; keep termination unconditional regardless.
      window_.pop_front();
      ++consumed_;
    }
  }
  return out;
}

std::vector<network::SegmentId> OnlineMatcher::Advance(bool flush) {
  std::vector<network::SegmentId> emitted;
  if (window_.empty()) return emitted;

  // The windowed trajectory the models see. The committed anchor (if any) is
  // prepended as a pinned first point so transitions out of it are scored
  // with its real timestamp and position.
  traj::Trajectory t;
  const int base = has_anchor_ ? 1 : 0;
  if (has_anchor_) t.points.push_back(anchor_point_);
  t.points.insert(t.points.end(), window_.begin(), window_.end());
  obs_->BeginTrajectory(t);
  trans_->BeginTrajectory(t);

  // Candidate sets over the window; the anchor contributes its single pinned
  // candidate. Window points with no candidates in range are skipped, exactly
  // as the offline Engine drops them.
  std::vector<CandidateSet> cands;
  std::vector<int> point_index;
  if (has_anchor_) {
    cands.push_back(CandidateSet{anchor_});
    point_index.push_back(0);
  }
  for (int i = base; i < t.size(); ++i) {
    CandidateSet cs = obs_->Candidates(t, i, config_.k);
    if (cs.empty()) continue;
    cands.push_back(std::move(cs));
    point_index.push_back(i);
  }
  const int m = static_cast<int>(cands.size());
  if (m == base) {
    // Nothing matchable in the window; drop the head to make progress.
    window_.pop_front();
    ++consumed_;
    return emitted;
  }

  // Forward DP, mirroring Engine::Match (shortcuts excluded). The pinned
  // anchor starts at score 0; its observation is a constant offset that
  // cannot change the argmax.
  std::vector<double> straight(m, 0.0);
  for (int s = 1; s < m; ++s) {
    straight[s] =
        geo::Distance(t[point_index[s - 1]].pos, t[point_index[s]].pos);
  }
  std::vector<std::vector<double>> f(m);
  std::vector<std::vector<int>> pre(m);
  f[0].resize(cands[0].size());
  pre[0].assign(cands[0].size(), -1);
  for (size_t j = 0; j < cands[0].size(); ++j) {
    f[0][j] = has_anchor_ ? 0.0 : cands[0][j].observation;
  }
  for (int s = 1; s < m; ++s) {
    const int prev_n = static_cast<int>(cands[s - 1].size());
    const int cur_n = static_cast<int>(cands[s].size());
    const double bound = RouteBound(straight[s]);
    std::vector<network::SegmentId> targets(cur_n);
    for (int k2 = 0; k2 < cur_n; ++k2) targets[k2] = cands[s][k2].segment;
    f[s].assign(cur_n, kNegInf);
    pre[s].assign(cur_n, -1);
    // Same flat-arena fill + batched column update as Engine::Match. Rows
    // whose f is already -inf are skipped before the route query (the skip
    // is exact: all their scores would be -inf), which the SoA kernel
    // re-applies internally for the update itself.
    w_scratch_.Reset(prev_n, cur_n);
    for (int j = 0; j < prev_n; ++j) {
      if (f[s - 1][j] == kNegInf) continue;  // Can never win the max below.
      const std::vector<std::optional<network::Route>> routes =
          router_->RouteMany(cands[s - 1][j].segment, targets, bound);
      for (int k2 = 0; k2 < cur_n; ++k2) {
        const network::Route* route =
            routes[k2].has_value() ? &routes[k2].value() : nullptr;
        const double pt =
            trans_->Transition(t, point_index[s - 1], point_index[s],
                               cands[s - 1][j], cands[s][k2], route, straight[s]);
        w_scratch_.Set(j, k2, pt * cands[s][k2].observation, route != nullptr);
      }
    }
    ViterbiColumnSoA(w_scratch_, f[s - 1].data(), f[s].data(), pre[s].data());
    // HMM-break recovery, mirroring Engine::Match: an unreachable column
    // restarts the window DP at this point (score = observation, pre = -1)
    // instead of poisoning the tail with -inf. The committed break is
    // counted at commit time below — Advance recomputes this DP on every
    // push, so counting here would tally the same gap once per push.
    bool reachable = false;
    for (const double v : f[s]) {
      if (v != kNegInf) {
        reachable = true;
        break;
      }
    }
    if (!reachable) {
      for (size_t k2 = 0; k2 < cands[s].size(); ++k2) {
        f[s][k2] = cands[s][k2].observation;
      }
    }
  }

  // Backward pass with the Engine's restart rule: a disconnected step picks
  // the locally best predecessor and the expansion will bridge (or break) it.
  int best = 0;
  for (size_t j = 1; j < f[m - 1].size(); ++j) {
    if (f[m - 1][j] > f[m - 1][best]) best = static_cast<int>(j);
  }
  std::vector<int> chain(m);
  chain[m - 1] = best;
  for (int s = m - 1; s > 0; --s) {
    int p = pre[s][chain[s]];
    if (p < 0) {
      p = 0;
      for (size_t j = 1; j < f[s - 1].size(); ++j) {
        if (f[s - 1][j] > f[s - 1][p]) p = static_cast<int>(j);
      }
    }
    chain[s - 1] = p;
  }

  // Commit the head — or, on flush, the whole chain. The expansion mirrors
  // Engine::ExpandPath: route within max(bound, beta), global consecutive
  // dedup against the committed path, discontinuity fallback.
  auto append = [&](network::SegmentId sid) {
    if (!committed_.empty() && committed_.back() == sid) return;
    committed_.push_back(sid);
    emitted.push_back(sid);
  };
  const int last = flush ? m - 1 : base;
  for (int s = base; s <= last; ++s) {
    const Candidate& next = cands[s][chain[s]];
    if (!has_anchor_) {
      append(next.segment);
    } else {
      const double hop = geo::Distance(anchor_point_.pos, t[point_index[s]].pos);
      const double bound = std::max(RouteBound(hop), config_.route_bound_beta);
      const std::optional<network::Route> route =
          router_->Route1(anchor_.segment, next.segment, bound);
      if (route.has_value()) {
        for (network::SegmentId sid : route->segments) append(sid);
      } else {
        // Re-anchor across the gap; the stitch is a discontinuity unless the
        // match stayed on the anchor's segment anyway.
        if (committed_.empty() || committed_.back() != next.segment) ++breaks_;
        append(next.segment);
      }
    }
    anchor_ = next;
    anchor_point_ = t[point_index[s]];
    has_anchor_ = true;
  }

  if (flush) {
    consumed_ += static_cast<int64_t>(window_.size());
    window_.clear();
  } else {
    // Drop everything up to and including the committed head's window slot.
    const int drop = point_index[base] - base + 1;
    for (int i = 0; i < drop; ++i) window_.pop_front();
    consumed_ += drop;
  }
  return emitted;
}

}  // namespace lhmm::hmm
