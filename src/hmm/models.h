#ifndef LHMM_HMM_MODELS_H_
#define LHMM_HMM_MODELS_H_

#include <optional>

#include "hmm/candidate.h"
#include "network/shortest_path.h"
#include "traj/trajectory.h"

namespace lhmm::hmm {

/// Produces candidate road segments with observation probabilities P_O(c|x).
/// Implementations range from the classical Gaussian-distance model (Eq. 2)
/// to LHMM's learned model (Eq. 8).
class ObservationModel {
 public:
  virtual ~ObservationModel() = default;

  /// Called once before a trajectory is matched; implementations may build
  /// per-trajectory state (e.g. LHMM's context-aware point representations).
  virtual void BeginTrajectory(const traj::Trajectory& t) {}

  /// Top-k candidate segments for point `i` of `t`, sorted by descending
  /// observation probability. May return fewer (or none) when the point has
  /// no roads in range.
  virtual CandidateSet Candidates(const traj::Trajectory& t, int i, int k) = 0;

  /// Observation probability of an arbitrary segment for point `i`; used by
  /// the shortcut pass to score projected candidates that were not part of
  /// the prepared candidate set.
  virtual Candidate MakeCandidate(const traj::Trajectory& t, int i,
                                  network::SegmentId segment) = 0;
};

/// Scores the move between candidates of consecutive points, P_T(c -> c').
class TransitionModel {
 public:
  virtual ~TransitionModel() = default;

  /// Called once before a trajectory is matched.
  virtual void BeginTrajectory(const traj::Trajectory& t) {}

  /// Transition probability for moving from `prev` (a candidate of point
  /// `prev_index`) to `cur` (a candidate of point `cur_index`) along `route`.
  /// The indices are positions in `t`; they are not necessarily adjacent —
  /// the engine drops points with empty candidate sets, and shortcut legs
  /// connect across a skipped point. `route` is nullptr when the target was
  /// unreachable within the search bound; implementations should return 0
  /// then. `straight_dist` is the straight-line distance between the two
  /// trajectory points this move connects (dist(x_{i-1}, x_i) in Eq. 3).
  virtual double Transition(const traj::Trajectory& t, int prev_index,
                            int cur_index, const Candidate& prev,
                            const Candidate& cur, const network::Route* route,
                            double straight_dist) = 0;
};

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_MODELS_H_
