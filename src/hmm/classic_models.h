#ifndef LHMM_HMM_CLASSIC_MODELS_H_
#define LHMM_HMM_CLASSIC_MODELS_H_

#include "hmm/models.h"
#include "network/road_network.h"
#include "network/grid_index.h"

namespace lhmm::hmm {

/// Parameters of the classical distance-based models (Eq. 2 and Eq. 3).
struct ClassicModelConfig {
  /// Gaussian sigma of the observation model, meters. GPS-era defaults are
  /// tens of meters; CTMM needs hundreds (the tower is far from the road).
  double obs_sigma = 450.0;
  /// Candidate search radius around the (tower) position, meters.
  double search_radius = 2200.0;
  /// Exponential scale of the transition model, meters.
  double trans_beta = 500.0;
};

/// The classical Gaussian observation probability of Eq. (2): closer roads
/// are more likely. P_O = exp(-0.5 (d/sigma)^2), the density shape with the
/// candidate-independent normalizer dropped.
class GaussianObservationModel : public ObservationModel {
 public:
  /// The index must outlive the model.
  GaussianObservationModel(const network::GridIndex* index,
                           const ClassicModelConfig& config);

  CandidateSet Candidates(const traj::Trajectory& t, int i, int k) override;
  Candidate MakeCandidate(const traj::Trajectory& t, int i,
                          network::SegmentId segment) override;

  double Score(double dist) const;

 protected:
  const network::GridIndex* index_;
  ClassicModelConfig config_;
};

/// The classical transition probability of Eq. (3): the route length should
/// be close to the straight-line distance between the two points,
/// P_T = exp(-|d_straight - d_route| / beta), optionally multiplied by the
/// velocity-constraint heuristic [8] (penalize routes whose implied speed
/// exceeds the roads' limits) that the literature layers onto Eq. (3).
class ClassicTransitionModel : public TransitionModel {
 public:
  /// `net` enables the velocity heuristic; pass nullptr for the bare Eq. (3).
  explicit ClassicTransitionModel(const ClassicModelConfig& config,
                                  const network::RoadNetwork* net = nullptr);

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override;

 protected:
  /// exp(-max(0, v - v_limit)/5) for the route, or 1 when disabled.
  double TemporalFactor(const traj::Trajectory& t, int prev_index, int cur_index,
                        const network::Route& route) const;

  ClassicModelConfig config_;
  const network::RoadNetwork* net_;
};

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_CLASSIC_MODELS_H_
