#ifndef LHMM_HMM_ENGINE_H_
#define LHMM_HMM_ENGINE_H_

#include <vector>

#include "hmm/models.h"
#include "hmm/viterbi_kernel.h"
#include "network/path_cache.h"
#include "network/road_network.h"

namespace lhmm::hmm {

/// Knobs of the path-finding process (Section IV-E).
struct EngineConfig {
  int k = 45;                  ///< Candidates per point (30 for LHMM in V-A2).
  bool use_shortcuts = false;  ///< Enable the Algorithm 2 optimization.
  int num_shortcuts = 1;       ///< K of Eq. (20); 1 suffices per Fig. 9.
  /// Route search bound = alpha * straight-line distance + beta, clamped to
  /// max_route_bound (meters).
  double route_bound_alpha = 4.0;
  double route_bound_beta = 1500.0;
  double max_route_bound = 12000.0;
};

/// Everything the evaluator needs from one matched trajectory.
struct EngineResult {
  /// The expanded matched path P as consecutive road segments.
  std::vector<network::SegmentId> path;
  /// Final candidate sets per retained point, including any candidates the
  /// shortcut pass appended; drives the Hitting Ratio metric.
  std::vector<CandidateSet> candidates;
  /// Original trajectory index of each retained point (points whose candidate
  /// set came back empty are dropped before the DP).
  std::vector<int> point_index;
  /// Chosen candidate segment per retained point.
  std::vector<network::SegmentId> matched;
  /// HMM breaks: retained-point positions s (indices into point_index /
  /// matched) where no candidate was reachable from step s-1 and Viterbi
  /// restarted (Newson–Krumm-style split-and-stitch). Empty on healthy input.
  std::vector<int> breaks;
  /// Trajectory seconds spanned by the break gaps, and the complementary
  /// fraction of the duration covered by connected sub-paths (1.0 when
  /// break-free or the duration is zero).
  double gap_seconds = 0.0;
  double gap_coverage = 1.0;

  int num_breaks() const { return static_cast<int>(breaks.size()); }
};

/// The HMM path-finding framework: candidate preparation, candidate graph
/// construction, Viterbi (Algorithm 1), and the shortcut optimization
/// (Algorithm 2). Observation and transition probabilities are pluggable, so
/// every HMM-family matcher in this library — classical baselines and LHMM —
/// runs through this one engine.
class Engine {
 public:
  /// All pointers must outlive the engine. The router is shared so its
  /// shortest-path cache amortizes across trajectories and matchers.
  Engine(const network::RoadNetwork* net, network::CachedRouter* router,
         ObservationModel* obs, TransitionModel* trans, const EngineConfig& config);

  /// Matches one (preprocessed) cellular trajectory.
  EngineResult Match(const traj::Trajectory& t);

  const EngineConfig& config() const { return config_; }
  EngineConfig* mutable_config() { return &config_; }

  /// Number of times the shortcut pass improved a candidate's score since
  /// construction (diagnostics; drives the Fig. 9 analysis). All diagnostics
  /// counters are per-engine-instance — engines run concurrently in batch
  /// matching, so callers aggregate across instances instead of reading a
  /// shared static.
  int64_t shortcuts_applied() const { return shortcuts_applied_; }

  /// The plugged-in models (shared with e.g. an OnlineMatcher).
  ObservationModel* observation_model() { return obs_; }
  TransitionModel* transition_model() { return trans_; }

 private:
  double RouteBound(double straight_dist) const;

  /// Runs the interleaved Algorithm 2 step for point `s`, possibly appending
  /// a projected candidate to `cands[s-1]` and improving f/pre at `s`.
  /// `w_prev` and `w_cur` are the original transition-weight matrices of
  /// steps s-1 and s (Eq. 20 operates on those).
  void ShortcutPass(const traj::Trajectory& t, int s,
                    const std::vector<int>& point_index,
                    std::vector<CandidateSet>* cands,
                    const WeightMatrix& w_prev, const WeightMatrix& w_cur,
                    std::vector<std::vector<double>>* f,
                    std::vector<std::vector<int>>* pre);

  /// Expands the chosen candidate chain into a full segment path.
  std::vector<network::SegmentId> ExpandPath(const std::vector<Candidate>& chain,
                                             const std::vector<double>& straight);

  const network::RoadNetwork* net_;
  network::CachedRouter* router_;
  ObservationModel* obs_;
  TransitionModel* trans_;
  EngineConfig config_;
  /// Rotating flat weight arenas (step s-1 and s) and the per-column target
  /// list, reused across columns and trajectories.
  WeightMatrix w_prev_, w_cur_;
  std::vector<network::SegmentId> cur_segments_;
  int64_t shortcuts_applied_ = 0;
  int64_t sc_evaluated_ = 0;  ///< LHMM_DEBUG_SC: shortcut scores evaluated.
  int64_t sc_improved_ = 0;   ///< LHMM_DEBUG_SC: of those, wins over f[s][k].
};

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_ENGINE_H_
