#ifndef LHMM_HMM_ONLINE_H_
#define LHMM_HMM_ONLINE_H_

#include <deque>
#include <vector>

#include "hmm/models.h"
#include "network/path_cache.h"

namespace lhmm::hmm {

/// Configuration of the fixed-lag online matcher.
struct OnlineConfig {
  int k = 20;            ///< Candidates per point.
  int lag = 8;           ///< Points of look-ahead before a point is committed.
  double route_bound_alpha = 4.0;
  double route_bound_beta = 1500.0;
  double max_route_bound = 12000.0;
};

/// Fixed-lag online map matching: points stream in one at a time; once a
/// point has `lag` successors, its match is committed and the road segments
/// connecting it to the previous commitment are emitted. Runs the same
/// observation/transition models as the offline Engine over a sliding
/// window, so any matcher family (classical or learned) can run in real
/// time with a bounded decision delay.
///
/// Latency/accuracy trade-off: larger lag approaches offline Viterbi
/// accuracy; lag 0 is greedy nearest-candidate tracking.
class OnlineMatcher {
 public:
  /// All pointers must outlive the matcher.
  OnlineMatcher(const network::RoadNetwork* net, network::CachedRouter* router,
                ObservationModel* obs, TransitionModel* trans,
                const OnlineConfig& config);

  /// Feeds the next trajectory point; returns the road segments newly
  /// committed by this update (often empty while the window fills).
  std::vector<network::SegmentId> Push(const traj::TrajPoint& point);

  /// Flushes the window at end of stream: commits the best path for all
  /// pending points and returns its segments.
  std::vector<network::SegmentId> Finish();

  /// Total committed path so far (everything ever returned, concatenated).
  const std::vector<network::SegmentId>& committed() const { return committed_; }

  /// Resets all streaming state for a new trajectory.
  void Reset();

 private:
  /// Recomputes the windowed DP and (if the window exceeds the lag) commits
  /// the oldest point.
  std::vector<network::SegmentId> Advance(bool flush);

  /// Emits the route from the last committed candidate to `next`, appending
  /// to committed_ and returning the newly added segments.
  std::vector<network::SegmentId> Emit(const Candidate& next, double straight);

  const network::RoadNetwork* net_;
  network::CachedRouter* router_;
  ObservationModel* obs_;
  TransitionModel* trans_;
  OnlineConfig config_;

  std::deque<traj::TrajPoint> window_;
  /// Anchor: the last committed candidate (invalid before the first commit).
  Candidate anchor_;
  bool has_anchor_ = false;
  traj::TrajPoint anchor_point_;
  std::vector<network::SegmentId> committed_;
};

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_ONLINE_H_
