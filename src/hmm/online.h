#ifndef LHMM_HMM_ONLINE_H_
#define LHMM_HMM_ONLINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "hmm/candidate.h"
#include "hmm/models.h"
#include "hmm/viterbi_kernel.h"
#include "network/path_cache.h"

namespace lhmm::hmm {

/// Configuration of the fixed-lag online matcher.
struct OnlineConfig {
  int k = 20;            ///< Candidates per point.
  int lag = 8;           ///< Points of look-ahead before a point is committed.
  double route_bound_alpha = 4.0;
  double route_bound_beta = 1500.0;
  double max_route_bound = 12000.0;
};

/// The complete resumable state of an OnlineMatcher, for drain/restore of
/// live serving sessions. The windowed DP is recomputed from the window on
/// every Advance, so the anchor candidate, the buffered window, the committed
/// path (its tail drives consecutive-segment dedup), and the counters are
/// sufficient: a matcher restored from a checkpoint continues with output
/// byte-identical to one that was never interrupted.
struct OnlineCheckpoint {
  bool has_anchor = false;
  Candidate anchor;
  traj::TrajPoint anchor_point;
  std::vector<traj::TrajPoint> window;
  std::vector<network::SegmentId> committed;
  int64_t pushed = 0;
  int64_t consumed = 0;
  int64_t breaks = 0;
};

/// Fixed-lag online map matching: points stream in one at a time; once a
/// point has `lag` successors, its match is committed and the road segments
/// connecting it to the previous commitment are emitted. Runs the same
/// observation/transition models as the offline Engine over a sliding
/// window, so any matcher family (classical or learned) can run in real
/// time with a bounded decision delay.
///
/// The committed anchor is re-inserted at the head of every window as a
/// pinned single-candidate point, so transitions out of it are scored with
/// the real timestamps and positions (no degenerate dt = 0 stand-in), and
/// the windowed DP mirrors the offline Engine exactly — including the
/// restart backtrack across disconnected steps. On Finish() the whole
/// remaining chain is committed in one DP pass, which makes the streamed
/// path equal to the offline Viterbi path (Engine with shortcuts disabled)
/// whenever `lag >= trajectory length`.
///
/// Latency/accuracy trade-off: larger lag approaches offline Viterbi
/// accuracy; lag 0 is greedy anchored tracking.
class OnlineMatcher {
 public:
  /// All pointers must outlive the matcher.
  OnlineMatcher(const network::RoadNetwork* net, network::CachedRouter* router,
                ObservationModel* obs, TransitionModel* trans,
                const OnlineConfig& config);

  /// Feeds the next trajectory point; returns the road segments newly
  /// committed by this update (often empty while the window fills).
  std::vector<network::SegmentId> Push(const traj::TrajPoint& point);

  /// Flushes the window at end of stream: commits the best path for all
  /// pending points and returns its segments.
  std::vector<network::SegmentId> Finish();

  /// Total committed path so far (everything ever returned, concatenated).
  const std::vector<network::SegmentId>& committed() const { return committed_; }

  /// Resets all streaming state (including the counters) for a new trajectory.
  void Reset();

  /// Snapshots the resumable state. Valid at any quiescent moment (no Push or
  /// Finish in flight).
  OnlineCheckpoint Checkpoint() const;

  /// Replaces all streaming state with `checkpoint`. Subsequent pushes emit
  /// exactly what the checkpointed matcher would have emitted.
  void Restore(const OnlineCheckpoint& checkpoint);

  /// Points fed via Push() since construction / Reset().
  int64_t pushed_points() const { return pushed_; }

  /// Points whose decision is final: committed to the path or dropped as
  /// unmatchable. Consumption is FIFO, so the consumed points are exactly
  /// the first consumed_points() arrivals; callers derive per-point commit
  /// latency by diffing this counter around Push()/Finish().
  int64_t consumed_points() const { return consumed_; }

  /// Points currently buffered and awaiting look-ahead.
  int pending_points() const { return static_cast<int>(window_.size()); }

  /// Committed HMM breaks: commits whose connecting route from the previous
  /// anchor did not exist (the windowed DP restarted across the gap and the
  /// path was stitched with a discontinuity). The online mirror of
  /// EngineResult::breaks. 0 on healthy input.
  int64_t breaks() const { return breaks_; }

 private:
  /// Recomputes the windowed DP and commits the oldest point — or, when
  /// `flush` is set, the entire chain. Guarantees progress: at least one
  /// window point is consumed whenever the window is non-empty.
  std::vector<network::SegmentId> Advance(bool flush);

  double RouteBound(double straight_dist) const;

  const network::RoadNetwork* net_;
  network::CachedRouter* router_;
  ObservationModel* obs_;
  TransitionModel* trans_;
  OnlineConfig config_;

  std::deque<traj::TrajPoint> window_;
  /// Anchor: the last committed candidate (invalid before the first commit).
  Candidate anchor_;
  bool has_anchor_ = false;
  traj::TrajPoint anchor_point_;
  std::vector<network::SegmentId> committed_;
  /// Per-column weight arena, reused across Advance calls.
  WeightMatrix w_scratch_;
  int64_t pushed_ = 0;
  int64_t consumed_ = 0;
  int64_t breaks_ = 0;
};

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_ONLINE_H_
