#ifndef LHMM_HMM_CANDIDATE_H_
#define LHMM_HMM_CANDIDATE_H_

#include <vector>

#include "geo/point.h"
#include "network/road_network.h"

namespace lhmm::hmm {

/// A candidate road segment of one trajectory point (Definition 4), carrying
/// the observation probability P_O(c | x) assigned by the observation model.
struct Candidate {
  network::SegmentId segment = network::kInvalidSegment;
  double dist = 0.0;        ///< Distance from the point to the segment, m.
  geo::Point closest;       ///< Closest point on the segment's geometry.
  double observation = 0.0; ///< P_O(c | x), in [0, 1].
  /// True for candidates appended by the shortcut pass (Algorithm 2) rather
  /// than by candidate preparation.
  bool from_shortcut = false;
};

using CandidateSet = std::vector<Candidate>;

}  // namespace lhmm::hmm

#endif  // LHMM_HMM_CANDIDATE_H_
