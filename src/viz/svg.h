#ifndef LHMM_VIZ_SVG_H_
#define LHMM_VIZ_SVG_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "geo/bbox.h"
#include "network/road_network.h"
#include "traj/trajectory.h"

namespace lhmm::viz {

/// Styling for one drawn layer.
struct Style {
  std::string color = "#444444";
  double width = 1.0;
  double opacity = 1.0;
};

/// A minimal SVG scene renderer for map-matching scenes: the road network as
/// a base layer, then paths, trajectories, and markers. Y is flipped so north
/// is up. Used by the case-study bench and handy for debugging matchers.
class SvgScene {
 public:
  /// `bounds` is the world-space viewport; `pixel_width` sets the image width
  /// (height follows the aspect ratio).
  SvgScene(const geo::BBox& bounds, double pixel_width = 1000.0);

  /// Draws every segment of the network (thin base layer; arterials thicker).
  void DrawNetwork(const network::RoadNetwork& net, const Style& style);

  /// Draws a road path as a thick polyline overlay.
  void DrawPath(const network::RoadNetwork& net,
                const std::vector<network::SegmentId>& path, const Style& style);

  /// Draws trajectory points as circles, optionally connected by a dashed
  /// line in sample order.
  void DrawTrajectory(const traj::Trajectory& t, const Style& style,
                      bool connect = true);

  /// Draws a single marker (e.g. a tower).
  void DrawMarker(const geo::Point& p, double radius, const Style& style);

  /// Adds a legend entry (rendered top-left).
  void AddLegend(const std::string& label, const Style& style);

  /// Serializes the SVG document.
  std::string ToString() const;

  /// Writes the SVG document to a file.
  core::Status Write(const std::string& path) const;

 private:
  /// World -> pixel transform.
  double X(double wx) const { return (wx - bounds_.min_x) * scale_; }
  double Y(double wy) const { return (bounds_.max_y - wy) * scale_; }

  geo::BBox bounds_;
  double scale_;
  double width_;
  double height_;
  std::vector<std::string> elements_;
  std::vector<std::pair<std::string, Style>> legend_;
};

}  // namespace lhmm::viz

#endif  // LHMM_VIZ_SVG_H_
