#include "viz/svg.h"

#include <fstream>

#include "core/logging.h"
#include "core/strings.h"

namespace lhmm::viz {

SvgScene::SvgScene(const geo::BBox& bounds, double pixel_width) : bounds_(bounds) {
  CHECK(!bounds.Empty());
  CHECK_GT(pixel_width, 0.0);
  scale_ = pixel_width / std::max(1.0, bounds.Width());
  width_ = pixel_width;
  height_ = std::max(1.0, bounds.Height()) * scale_;
}

void SvgScene::DrawNetwork(const network::RoadNetwork& net, const Style& style) {
  for (const network::RoadSegment& seg : net.segments()) {
    // Draw each two-way pair once.
    if (seg.reverse != network::kInvalidSegment && seg.reverse < seg.id) continue;
    const double width = seg.level == network::RoadLevel::kArterial
                             ? style.width * 2.0
                             : style.width;
    std::string points;
    for (int i = 0; i < seg.geometry.size(); ++i) {
      if (i > 0) points += " ";
      points += core::StrFormat("%.1f,%.1f", X(seg.geometry[i].x),
                                Y(seg.geometry[i].y));
    }
    elements_.push_back(core::StrFormat(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.1f\""
        " stroke-opacity=\"%.2f\"/>",
        points.c_str(), style.color.c_str(), width, style.opacity));
  }
}

void SvgScene::DrawPath(const network::RoadNetwork& net,
                        const std::vector<network::SegmentId>& path,
                        const Style& style) {
  std::string points;
  for (network::SegmentId sid : path) {
    const geo::Polyline& geom = net.segment(sid).geometry;
    for (int i = 0; i < geom.size(); ++i) {
      if (!points.empty()) points += " ";
      points += core::StrFormat("%.1f,%.1f", X(geom[i].x), Y(geom[i].y));
    }
  }
  if (points.empty()) return;
  elements_.push_back(core::StrFormat(
      "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.1f\""
      " stroke-opacity=\"%.2f\" stroke-linejoin=\"round\"/>",
      points.c_str(), style.color.c_str(), style.width, style.opacity));
}

void SvgScene::DrawTrajectory(const traj::Trajectory& t, const Style& style,
                              bool connect) {
  if (connect && t.size() > 1) {
    std::string points;
    for (const auto& p : t.points) {
      if (!points.empty()) points += " ";
      points += core::StrFormat("%.1f,%.1f", X(p.pos.x), Y(p.pos.y));
    }
    elements_.push_back(core::StrFormat(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"%.1f\""
        " stroke-opacity=\"%.2f\" stroke-dasharray=\"6,4\"/>",
        points.c_str(), style.color.c_str(), style.width * 0.7, style.opacity));
  }
  for (const auto& p : t.points) {
    elements_.push_back(core::StrFormat(
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"%s\""
        " fill-opacity=\"%.2f\"/>",
        X(p.pos.x), Y(p.pos.y), style.width * 2.2, style.color.c_str(),
        style.opacity));
  }
}

void SvgScene::DrawMarker(const geo::Point& p, double radius, const Style& style) {
  elements_.push_back(core::StrFormat(
      "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"none\" stroke=\"%s\""
      " stroke-width=\"%.1f\" stroke-opacity=\"%.2f\"/>",
      X(p.x), Y(p.y), radius * scale_, style.color.c_str(), style.width,
      style.opacity));
}

void SvgScene::AddLegend(const std::string& label, const Style& style) {
  legend_.push_back({label, style});
}

std::string SvgScene::ToString() const {
  std::string out = core::StrFormat(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\""
      " viewBox=\"0 0 %.0f %.0f\">\n"
      "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n",
      width_, height_, width_, height_);
  for (const std::string& el : elements_) {
    out += el;
    out += "\n";
  }
  for (size_t i = 0; i < legend_.size(); ++i) {
    const double y = 24.0 + 22.0 * static_cast<double>(i);
    out += core::StrFormat(
        "<line x1=\"16\" y1=\"%.0f\" x2=\"44\" y2=\"%.0f\" stroke=\"%s\""
        " stroke-width=\"4\"/>"
        "<text x=\"52\" y=\"%.0f\" font-family=\"sans-serif\" font-size=\"14\">"
        "%s</text>\n",
        y, y, legend_[i].second.color.c_str(), y + 5.0,
        legend_[i].first.c_str());
  }
  out += "</svg>\n";
  return out;
}

core::Status SvgScene::Write(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return core::Status::IoError("cannot open " + path);
  out << ToString();
  if (!out.good()) return core::Status::IoError("write failed for " + path);
  return core::Status::Ok();
}

}  // namespace lhmm::viz
