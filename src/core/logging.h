#ifndef LHMM_CORE_LOGGING_H_
#define LHMM_CORE_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace lhmm::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Returns the process-wide minimum level below which log lines are dropped.
LogLevel MinLogLevel();

/// Sets the process-wide minimum log level (default: kInfo).
void SetMinLogLevel(LogLevel level);

/// One log line under construction. The destructor flushes to stderr if the
/// line's level passes the filter; fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace lhmm::core

#define LHMM_LOG_AT(level) \
  ::lhmm::core::LogMessage(level, __FILE__, __LINE__).stream()

#define LOG_DEBUG LHMM_LOG_AT(::lhmm::core::LogLevel::kDebug)
#define LOG_INFO LHMM_LOG_AT(::lhmm::core::LogLevel::kInfo)
#define LOG_WARNING LHMM_LOG_AT(::lhmm::core::LogLevel::kWarning)
#define LOG_ERROR LHMM_LOG_AT(::lhmm::core::LogLevel::kError)
#define LOG_FATAL LHMM_LOG_AT(::lhmm::core::LogLevel::kFatal)

/// Fatal assertion on invariants. Active in all build types: map-matching
/// results are silently wrong when these fire, so we always pay the check.
#define CHECK(cond)                                          \
  if (!(cond))                                               \
  LHMM_LOG_AT(::lhmm::core::LogLevel::kFatal)                \
      << "CHECK failed: " #cond " "

#define CHECK_OP(a, b, op) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

#endif  // LHMM_CORE_LOGGING_H_
