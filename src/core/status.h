#ifndef LHMM_CORE_STATUS_H_
#define LHMM_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace lhmm::core {

/// Error categories used across the library. Mirrors the usual database-engine
/// Status idiom (the project does not use exceptions).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  /// Admission control: a rate limiter or quota refused the request; retrying
  /// after a backoff is the expected client reaction.
  kResourceExhausted,
  /// The service (or a session) cannot take the request right now — draining,
  /// queue full, quarantined. Also retryable, typically with longer backoff.
  kUnavailable,
  /// A per-request deadline elapsed before the work completed; results that
  /// carry this code may still hold a partial committed prefix.
  kDeadlineExceeded,
  /// The operation is not supported by this implementation (e.g. a matcher
  /// family without a streaming session form). Not retryable.
  kUnimplemented,
  /// The operation was *applied* but its durability promise was broken — a
  /// journal append or fsync failed under FsyncPolicy::kEveryRecord, or the
  /// server is running degraded-nondurable. Retrying would double-apply;
  /// the honest client reaction is to note that this event may not survive
  /// a crash (and watch the server's degraded/durability status).
  kDataLoss,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result for fallible operations.
///
/// Functions that can fail for reasons a caller should handle return `Status`
/// (or `Result<T>`); programming errors are reported with CHECK macros instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`.
///
/// Accessing `value()` on an error result is a fatal programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return value;` / `return Status::NotFound(...)`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

namespace internal_status {
inline const Status& ToStatus(const Status& s) { return s; }
template <typename T>
const Status& ToStatus(const Result<T>& r) {
  return r.status();
}
}  // namespace internal_status

/// Propagates a non-OK Status from the current function.
#define LHMM_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::lhmm::core::Status lhmm_status_ = (expr);     \
    if (!lhmm_status_.ok()) return lhmm_status_;    \
  } while (false)

/// Fatal check that a Status or Result<T> is OK (requires core/logging.h).
#define CHECK_OK(expr)                                                        \
  do {                                                                        \
    const auto& lhmm_chk_ = (expr);                                           \
    CHECK(lhmm_chk_.ok()) << ::lhmm::core::internal_status::ToStatus(lhmm_chk_) \
                                 .ToString();                                 \
  } while (false)

}  // namespace lhmm::core

#endif  // LHMM_CORE_STATUS_H_
