#include "core/csv.h"

#include <fstream>
#include <sstream>

namespace lhmm::core {

namespace {
std::string EscapeField(const std::string& field) {
  bool needs_quote = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void CsvWriter::AddRow(const std::vector<std::string>& fields) {
  std::string row;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) row += ',';
    row += EscapeField(fields[i]);
  }
  rows_.push_back(std::move(row));
}

Status CsvWriter::Flush() const {
  std::ofstream out(path_);
  if (!out.is_open()) return Status::IoError("cannot open " + path_);
  for (const auto& row : rows_) out << row << "\n";
  if (!out.good()) return Status::IoError("write failed for " + path_);
  return Status::Ok();
}

Result<std::vector<std::vector<std::string>>> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    for (size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_quotes) {
        if (c == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            ++i;
          } else {
            in_quotes = false;
          }
        } else {
          field += c;
        }
      } else if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(field));
        field.clear();
      } else {
        field += c;
      }
    }
    fields.push_back(std::move(field));
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace lhmm::core
