#ifndef LHMM_CORE_CSV_H_
#define LHMM_CORE_CSV_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace lhmm::core {

/// Minimal CSV writer used by benches to dump series for external plotting.
/// Fields containing the separator or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path) : path_(std::move(path)) {}

  /// Appends one row; values are escaped as needed.
  void AddRow(const std::vector<std::string>& fields);

  /// Writes all buffered rows to the file, replacing existing content.
  Status Flush() const;

 private:
  std::string path_;
  std::vector<std::string> rows_;
};

/// Reads a whole CSV file into rows of fields. Handles quoted fields.
Result<std::vector<std::vector<std::string>>> ReadCsv(const std::string& path);

}  // namespace lhmm::core

#endif  // LHMM_CORE_CSV_H_
