#include "core/logging.h"

#include <cstdlib>

namespace lhmm::core {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel MinLogLevel() { return g_min_level; }

void SetMinLogLevel(LogLevel level) { g_min_level = level; }

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace lhmm::core
