#include "core/thread_pool.h"

#include <atomic>
#include <cstdlib>

namespace lhmm::core {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("LHMM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(int num_threads, int64_t n,
                 const std::function<void(int, int64_t)>& fn) {
  if (n <= 0) return;
  if (num_threads < 1) num_threads = 1;
  if (num_threads == 1) {
    for (int64_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::atomic<int64_t> next{0};
  ThreadPool pool(num_threads);
  for (int w = 0; w < num_threads; ++w) {
    pool.Submit([w, n, &next, &fn] {
      for (int64_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(w, i);
      }
    });
  }
  pool.Wait();
}

}  // namespace lhmm::core
