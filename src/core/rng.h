#ifndef LHMM_CORE_RNG_H_
#define LHMM_CORE_RNG_H_

#include <cstdint>
#include <vector>

namespace lhmm::core {

/// Deterministic pseudo-random generator (xoshiro256**) used everywhere in the
/// library so that simulators, training, and benches are reproducible from a
/// single seed. Not thread safe; create one per thread of work.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). `n` must be positive.
  int UniformInt(int n);

  /// Uniform integer in [lo, hi] inclusive.
  int UniformInt(int lo, int hi);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate parameter lambda (> 0).
  double Exponential(double lambda);

  /// Returns true with probability `p`.
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (small means only).
  int Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be >= 0 and at least one positive.
  int Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent generator (for sub-tasks) from this one.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace lhmm::core

#endif  // LHMM_CORE_RNG_H_
