#include "core/rng.h"

#include <cmath>

#include "core/logging.h"

namespace lhmm::core {

namespace {
// SplitMix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  CHECK_GT(n, 0);
  return static_cast<int>(Next() % static_cast<uint64_t>(n));
}

int Rng::UniformInt(int lo, int hi) {
  CHECK_LE(lo, hi);
  return lo + UniformInt(hi - lo + 1);
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::Exponential(double lambda) {
  CHECK_GT(lambda, 0.0);
  double u = 0.0;
  while (u <= 1e-300) u = Uniform();
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double mean) {
  CHECK_GE(mean, 0.0);
  // Knuth's method; fine for the small means used by the simulator.
  const double limit = std::exp(-mean);
  int k = 0;
  double product = Uniform();
  while (product > limit) {
    ++k;
    product *= Uniform();
  }
  return k;
}

int Rng::Categorical(const std::vector<double>& weights) {
  CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CHECK_GE(w, 0.0);
    total += w;
  }
  CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace lhmm::core
