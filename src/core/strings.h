#ifndef LHMM_CORE_STRINGS_H_
#define LHMM_CORE_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lhmm::core {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Joins `parts` with `sep` between elements.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Trims ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view text);

/// Returns true if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

/// Parses an int; returns false on malformed input.
bool ParseInt(std::string_view text, int* out);

}  // namespace lhmm::core

#endif  // LHMM_CORE_STRINGS_H_
