#ifndef LHMM_CORE_THREAD_POOL_H_
#define LHMM_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lhmm::core {

/// A fixed pool of worker threads over a single shared FIFO queue (no work
/// stealing). Tasks must not throw. The pool is the substrate of the batch
/// matching engine and of any future serving layer: construct once, Submit
/// many tasks, Wait for quiescence, reuse.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread safe; may be called from inside a task.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished (queue empty and all
  /// workers idle). The pool is reusable afterwards.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Default worker count: the LHMM_THREADS environment variable when set,
  /// otherwise std::thread::hardware_concurrency() (at least 1).
  static int DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Signals workers: task ready / stop.
  std::condition_variable idle_cv_;  ///< Signals Wait(): pool drained.
  int64_t in_flight_ = 0;            ///< Queued + currently running tasks.
  bool stop_ = false;
};

/// Runs fn(worker_id, index) for every index in [0, n), spread over
/// `num_threads` workers pulling indices from a shared counter. Each index is
/// processed exactly once; which worker gets which index is load-dependent,
/// so fn must only rely on per-worker or per-index state. Blocks until done.
void ParallelFor(int num_threads, int64_t n,
                 const std::function<void(int worker_id, int64_t index)>& fn);

}  // namespace lhmm::core

#endif  // LHMM_CORE_THREAD_POOL_H_
