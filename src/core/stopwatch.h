#ifndef LHMM_CORE_STOPWATCH_H_
#define LHMM_CORE_STOPWATCH_H_

#include <chrono>

namespace lhmm::core {

/// Wall-clock stopwatch used by the evaluator to report average matching time.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lhmm::core

#endif  // LHMM_CORE_STOPWATCH_H_
