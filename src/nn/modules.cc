#include "nn/modules.h"

#include <cmath>

#include "core/logging.h"

namespace lhmm::nn {

Linear::Linear(int in_dim, int out_dim, core::Rng* rng)
    : weight_(Matrix::Xavier(in_dim, out_dim, rng), /*requires_grad=*/true),
      bias_(Matrix::Zeros(1, out_dim), /*requires_grad=*/true) {}

Tensor Linear::Forward(const Tensor& x) const {
  return AddRowBroadcastT(MatMulT(x, weight_), bias_);
}

Matrix Linear::Forward(const Matrix& x) const {
  return AddRowBroadcast(MatMul(x, weight_.value()), bias_.value());
}

void Linear::CollectParams(std::vector<Tensor>* out) {
  out->push_back(weight_);
  out->push_back(bias_);
}

Mlp::Mlp(const std::vector<int>& dims, core::Rng* rng) {
  CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) h = ReluT(h);
  }
  return h;
}

Matrix Mlp::Forward(const Matrix& x) const {
  Matrix h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      for (int j = 0; j < h.size(); ++j) {
        if (h.data()[j] < 0.0f) h.data()[j] = 0.0f;
      }
    }
  }
  return h;
}

void Mlp::CollectParams(std::vector<Tensor>* out) {
  for (Linear& layer : layers_) layer.CollectParams(out);
}

Embedding::Embedding(int count, int dim, core::Rng* rng)
    : table_(Matrix::Gaussian(count, dim, 0.1f, rng), /*requires_grad=*/true) {}

Tensor Embedding::Forward(const std::vector<int>& indices) const {
  return RowsT(table_, indices);
}

void Embedding::CollectParams(std::vector<Tensor>* out) {
  out->push_back(table_);
}

AdditiveAttention::AdditiveAttention(int query_dim, int key_dim, int hidden_dim,
                                     core::Rng* rng)
    : query_proj_(query_dim, hidden_dim, rng),
      key_proj_(key_dim, hidden_dim, rng),
      score_(2 * hidden_dim, 1, rng) {}

Tensor AdditiveAttention::Forward(const Tensor& query, const Tensor& keys,
                                  const Tensor& values, Tensor* weights_out) const {
  CHECK_EQ(query.rows(), 1);
  const int n = keys.rows();
  const Tensor q = RepeatRowT(query_proj_.Forward(query), n);  // n x h
  const Tensor k = key_proj_.Forward(keys);                    // n x h
  const Tensor scores = score_.Forward(TanhT(ConcatColsT(q, k)));  // n x 1
  const Tensor weights = SoftmaxRowsT(TransposeT(scores));         // 1 x n
  if (weights_out != nullptr) *weights_out = weights;
  return MatMulT(weights, values);  // 1 x value-dim
}

Matrix AdditiveAttention::Forward(const Matrix& query, const Matrix& keys,
                                  const Matrix& values, Matrix* weights_out) const {
  return ForwardProjected(query, ProjectKeys(keys), values, weights_out);
}

Matrix AdditiveAttention::ProjectKeys(const Matrix& keys) const {
  return key_proj_.Forward(keys);
}

Matrix AdditiveAttention::ForwardProjected(const Matrix& query,
                                           const Matrix& projected_keys,
                                           const Matrix& values,
                                           Matrix* weights_out) const {
  CHECK_EQ(query.rows(), 1);
  const int n = projected_keys.rows();
  const Matrix qp = query_proj_.Forward(query);  // 1 x h
  const Matrix& k = projected_keys;
  Matrix cat(n, qp.cols() + k.cols());
  for (int i = 0; i < n; ++i) {
    float* row = cat.Row(i);
    for (int j = 0; j < qp.cols(); ++j) row[j] = qp(0, j);
    for (int j = 0; j < k.cols(); ++j) row[qp.cols() + j] = k(i, j);
  }
  for (int i = 0; i < cat.size(); ++i) cat.data()[i] = std::tanh(cat.data()[i]);
  const Matrix scores = score_.Forward(cat);              // n x 1
  const Matrix weights = SoftmaxRows(Transpose(scores));  // 1 x n
  if (weights_out != nullptr) *weights_out = weights;
  return MatMul(weights, values);
}

void AdditiveAttention::CollectParams(std::vector<Tensor>* out) {
  query_proj_.CollectParams(out);
  key_proj_.CollectParams(out);
  score_.CollectParams(out);
}

}  // namespace lhmm::nn
