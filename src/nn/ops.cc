#include "nn/ops.h"

#include <cmath>

#include "core/logging.h"

namespace lhmm::nn {

namespace {
/// Accumulates `g` into parent `i` of `node` if that parent wants gradients.
void GradInto(TensorNode* node, size_t i, const Matrix& g) {
  TensorNode* parent = node->parents[i].get();
  if (parent->requires_grad) parent->AddGrad(g);
}
}  // namespace

Tensor MatMulT(const Tensor& a, const Tensor& b) {
  Matrix out = MatMul(a.value(), b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* node) {
    const Matrix& dc = node->grad;
    const Matrix& av = node->parents[0]->value;
    const Matrix& bv = node->parents[1]->value;
    GradInto(node, 0, MatMulTransB(dc, bv));  // dA = dC * B^T
    GradInto(node, 1, MatMulTransA(av, dc));  // dB = A^T * dC
  });
}

Tensor AddT(const Tensor& a, const Tensor& b) {
  Matrix out = AddMat(a.value(), b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* node) {
    GradInto(node, 0, node->grad);
    GradInto(node, 1, node->grad);
  });
}

Tensor SubT(const Tensor& a, const Tensor& b) {
  Matrix out = SubMat(a.value(), b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* node) {
    GradInto(node, 0, node->grad);
    Matrix neg = node->grad;
    neg.Scale(-1.0f);
    GradInto(node, 1, neg);
  });
}

Tensor MulT(const Tensor& a, const Tensor& b) {
  Matrix out = MulMat(a.value(), b.value());
  return Tensor::FromOp(std::move(out), {a, b}, [](TensorNode* node) {
    GradInto(node, 0, MulMat(node->grad, node->parents[1]->value));
    GradInto(node, 1, MulMat(node->grad, node->parents[0]->value));
  });
}

Tensor ScaleT(const Tensor& a, float s) {
  Matrix out = a.value();
  out.Scale(s);
  return Tensor::FromOp(std::move(out), {a}, [s](TensorNode* node) {
    Matrix g = node->grad;
    g.Scale(s);
    GradInto(node, 0, g);
  });
}

Tensor AddRowBroadcastT(const Tensor& a, const Tensor& row) {
  Matrix out = AddRowBroadcast(a.value(), row.value());
  return Tensor::FromOp(std::move(out), {a, row}, [](TensorNode* node) {
    GradInto(node, 0, node->grad);
    GradInto(node, 1, SumRowsOf(node->grad));
  });
}

Tensor ConcatColsT(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.value().Row(i);
    const float* brow = b.value().Row(i);
    float* orow = out.Row(i);
    for (int j = 0; j < a.cols(); ++j) orow[j] = arow[j];
    for (int j = 0; j < b.cols(); ++j) orow[a.cols() + j] = brow[j];
  }
  const int ca = a.cols();
  const int cb = b.cols();
  return Tensor::FromOp(std::move(out), {a, b}, [ca, cb](TensorNode* node) {
    const Matrix& dc = node->grad;
    Matrix da(dc.rows(), ca);
    Matrix db(dc.rows(), cb);
    for (int i = 0; i < dc.rows(); ++i) {
      const float* drow = dc.Row(i);
      for (int j = 0; j < ca; ++j) da(i, j) = drow[j];
      for (int j = 0; j < cb; ++j) db(i, j) = drow[ca + j];
    }
    GradInto(node, 0, da);
    GradInto(node, 1, db);
  });
}

Tensor RowsT(const Tensor& a, const std::vector<int>& indices) {
  Matrix out(static_cast<int>(indices.size()), a.cols());
  for (size_t i = 0; i < indices.size(); ++i) {
    CHECK_GE(indices[i], 0);
    CHECK_LT(indices[i], a.rows());
    const float* src = a.value().Row(indices[i]);
    float* dst = out.Row(static_cast<int>(i));
    for (int j = 0; j < a.cols(); ++j) dst[j] = src[j];
  }
  return Tensor::FromOp(std::move(out), {a}, [indices](TensorNode* node) {
    TensorNode* parent = node->parents[0].get();
    if (!parent->requires_grad) return;
    Matrix da = Matrix::Zeros(parent->value.rows(), parent->value.cols());
    for (size_t i = 0; i < indices.size(); ++i) {
      const float* grow = node->grad.Row(static_cast<int>(i));
      float* drow = da.Row(indices[i]);
      for (int j = 0; j < da.cols(); ++j) drow[j] += grow[j];
    }
    parent->AddGrad(da);
  });
}

Tensor RepeatRowT(const Tensor& a, int n) {
  CHECK_EQ(a.rows(), 1);
  Matrix out(n, a.cols());
  for (int i = 0; i < n; ++i) {
    const float* src = a.value().Row(0);
    float* dst = out.Row(i);
    for (int j = 0; j < a.cols(); ++j) dst[j] = src[j];
  }
  return Tensor::FromOp(std::move(out), {a}, [](TensorNode* node) {
    GradInto(node, 0, SumRowsOf(node->grad));
  });
}

Tensor ReluT(const Tensor& a) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) {
    if (out.data()[i] < 0.0f) out.data()[i] = 0.0f;
  }
  return Tensor::FromOp(std::move(out), {a}, [](TensorNode* node) {
    const Matrix& in = node->parents[0]->value;
    Matrix g = node->grad;
    for (int i = 0; i < g.size(); ++i) {
      if (in.data()[i] <= 0.0f) g.data()[i] = 0.0f;
    }
    GradInto(node, 0, g);
  });
}

Tensor TanhT(const Tensor& a) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) out.data()[i] = std::tanh(out.data()[i]);
  return Tensor::FromOp(std::move(out), {a}, [](TensorNode* node) {
    const Matrix& y = node->value;
    Matrix g = node->grad;
    for (int i = 0; i < g.size(); ++i) {
      g.data()[i] *= 1.0f - y.data()[i] * y.data()[i];
    }
    GradInto(node, 0, g);
  });
}

Tensor SigmoidT(const Tensor& a) {
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) {
    out.data()[i] = 1.0f / (1.0f + std::exp(-out.data()[i]));
  }
  return Tensor::FromOp(std::move(out), {a}, [](TensorNode* node) {
    const Matrix& y = node->value;
    Matrix g = node->grad;
    for (int i = 0; i < g.size(); ++i) {
      g.data()[i] *= y.data()[i] * (1.0f - y.data()[i]);
    }
    GradInto(node, 0, g);
  });
}

Tensor SoftmaxRowsT(const Tensor& a) {
  Matrix out = SoftmaxRows(a.value());
  return Tensor::FromOp(std::move(out), {a}, [](TensorNode* node) {
    const Matrix& y = node->value;
    const Matrix& dy = node->grad;
    Matrix da(y.rows(), y.cols());
    for (int i = 0; i < y.rows(); ++i) {
      const float* yrow = y.Row(i);
      const float* drow = dy.Row(i);
      float dot = 0.0f;
      for (int j = 0; j < y.cols(); ++j) dot += yrow[j] * drow[j];
      float* arow = da.Row(i);
      for (int j = 0; j < y.cols(); ++j) arow[j] = yrow[j] * (drow[j] - dot);
    }
    GradInto(node, 0, da);
  });
}

Tensor TransposeT(const Tensor& a) {
  Matrix out = Transpose(a.value());
  return Tensor::FromOp(std::move(out), {a}, [](TensorNode* node) {
    GradInto(node, 0, Transpose(node->grad));
  });
}

Tensor SumAllT(const Tensor& a) {
  float sum = 0.0f;
  for (int i = 0; i < a.value().size(); ++i) sum += a.value().data()[i];
  return Tensor::FromOp(Matrix::Full(1, 1, sum), {a}, [](TensorNode* node) {
    const float g = node->grad(0, 0);
    const Matrix& in = node->parents[0]->value;
    GradInto(node, 0, Matrix::Full(in.rows(), in.cols(), g));
  });
}

Tensor MeanAllT(const Tensor& a) {
  const int n = a.value().size();
  CHECK_GT(n, 0);
  float sum = 0.0f;
  for (int i = 0; i < n; ++i) sum += a.value().data()[i];
  return Tensor::FromOp(Matrix::Full(1, 1, sum / n), {a}, [n](TensorNode* node) {
    const float g = node->grad(0, 0) / static_cast<float>(n);
    const Matrix& in = node->parents[0]->value;
    GradInto(node, 0, Matrix::Full(in.rows(), in.cols(), g));
  });
}

Tensor MeanRowsT(const Tensor& a) {
  const int r = a.rows();
  CHECK_GT(r, 0);
  Matrix out = SumRowsOf(a.value());
  out.Scale(1.0f / static_cast<float>(r));
  return Tensor::FromOp(std::move(out), {a}, [r](TensorNode* node) {
    const Matrix& dy = node->grad;  // 1 x C
    Matrix da(r, dy.cols());
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < dy.cols(); ++j) {
        da(i, j) = dy(0, j) / static_cast<float>(r);
      }
    }
    GradInto(node, 0, da);
  });
}

Tensor SparseMixT(std::shared_ptr<const SparseRows> s, const Tensor& x) {
  const int out_rows = static_cast<int>(s->rows.size());
  const int cols = x.cols();
  Matrix out(out_rows, cols);
  for (int i = 0; i < out_rows; ++i) {
    float* orow = out.Row(i);
    for (const auto& [src, weight] : s->rows[i]) {
      const float* xrow = x.value().Row(src);
      for (int j = 0; j < cols; ++j) orow[j] += weight * xrow[j];
    }
  }
  return Tensor::FromOp(std::move(out), {x}, [s](TensorNode* node) {
    TensorNode* parent = node->parents[0].get();
    if (!parent->requires_grad) return;
    Matrix dx = Matrix::Zeros(parent->value.rows(), parent->value.cols());
    const Matrix& dy = node->grad;
    for (size_t i = 0; i < s->rows.size(); ++i) {
      const float* grow = dy.Row(static_cast<int>(i));
      for (const auto& [src, weight] : s->rows[i]) {
        float* drow = dx.Row(src);
        for (int j = 0; j < dx.cols(); ++j) drow[j] += weight * grow[j];
      }
    }
    parent->AddGrad(dx);
  });
}

Tensor ConcatRowsT(const std::vector<Tensor>& parts) {
  CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int total_rows = 0;
  for (const Tensor& p : parts) {
    CHECK_EQ(p.cols(), cols);
    total_rows += p.rows();
  }
  Matrix out(total_rows, cols);
  int at = 0;
  for (const Tensor& p : parts) {
    for (int i = 0; i < p.rows(); ++i) {
      const float* src = p.value().Row(i);
      float* dst = out.Row(at++);
      for (int j = 0; j < cols; ++j) dst[j] = src[j];
    }
  }
  std::vector<int> row_counts;
  row_counts.reserve(parts.size());
  for (const Tensor& p : parts) row_counts.push_back(p.rows());
  return Tensor::FromOp(std::move(out), parts, [row_counts](TensorNode* node) {
    const Matrix& dy = node->grad;
    int at = 0;
    for (size_t pi = 0; pi < row_counts.size(); ++pi) {
      TensorNode* parent = node->parents[pi].get();
      if (!parent->requires_grad) {
        at += row_counts[pi];
        continue;
      }
      Matrix dp(row_counts[pi], dy.cols());
      for (int i = 0; i < row_counts[pi]; ++i) {
        const float* src = dy.Row(at + i);
        float* dst = dp.Row(i);
        for (int j = 0; j < dy.cols(); ++j) dst[j] = src[j];
      }
      parent->AddGrad(dp);
      at += row_counts[pi];
    }
  });
}

Tensor DropoutT(const Tensor& a, float p, core::Rng* rng) {
  CHECK_GE(p, 0.0f);
  CHECK_LT(p, 1.0f);
  if (p == 0.0f) return a;
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<Matrix>(a.rows(), a.cols());
  Matrix out = a.value();
  for (int i = 0; i < out.size(); ++i) {
    const float keep = rng->Bernoulli(p) ? 0.0f : scale;
    mask->data()[i] = keep;
    out.data()[i] *= keep;
  }
  return Tensor::FromOp(std::move(out), {a}, [mask](TensorNode* node) {
    GradInto(node, 0, MulMat(node->grad, *mask));
  });
}

}  // namespace lhmm::nn
