#ifndef LHMM_NN_OPS_H_
#define LHMM_NN_OPS_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "nn/tensor.h"

namespace lhmm::nn {

/// Matrix product a(RxK) * b(KxC).
Tensor MatMulT(const Tensor& a, const Tensor& b);

/// Element-wise sum of same-shape tensors.
Tensor AddT(const Tensor& a, const Tensor& b);

/// Element-wise difference.
Tensor SubT(const Tensor& a, const Tensor& b);

/// Element-wise (Hadamard) product.
Tensor MulT(const Tensor& a, const Tensor& b);

/// Scalar scale.
Tensor ScaleT(const Tensor& a, float s);

/// Adds a 1xC row vector to every row of a (bias add).
Tensor AddRowBroadcastT(const Tensor& a, const Tensor& row);

/// Concatenates along columns: [a | b].
Tensor ConcatColsT(const Tensor& a, const Tensor& b);

/// Gathers rows of `a` by index (embedding lookup); gradient scatter-adds.
Tensor RowsT(const Tensor& a, const std::vector<int>& indices);

/// Repeats the 1xC row `a` into an n x C tensor.
Tensor RepeatRowT(const Tensor& a, int n);

/// Rectified linear unit.
Tensor ReluT(const Tensor& a);

/// Hyperbolic tangent.
Tensor TanhT(const Tensor& a);

/// Logistic sigmoid.
Tensor SigmoidT(const Tensor& a);

/// Row-wise softmax.
Tensor SoftmaxRowsT(const Tensor& a);

/// Transpose.
Tensor TransposeT(const Tensor& a);

/// Sum of all entries, a 1x1 tensor.
Tensor SumAllT(const Tensor& a);

/// Mean of all entries, a 1x1 tensor.
Tensor MeanAllT(const Tensor& a);

/// Column means: R x C -> 1 x C.
Tensor MeanRowsT(const Tensor& a);

/// A fixed (non-trainable) sparse row-mixing matrix: output row i is
/// sum_j weight_ij * input row j. Used for graph message passing, where the
/// mixing encodes the (normalized) adjacency of one relation.
struct SparseRows {
  /// rows[i] lists (source row, weight) pairs contributing to output row i.
  std::vector<std::vector<std::pair<int, float>>> rows;
};

/// y = S x where S is the fixed sparse matrix. Gradient flows to x only:
/// dx = S^T dy.
Tensor SparseMixT(std::shared_ptr<const SparseRows> s, const Tensor& x);

/// Stacks tensors with equal column counts vertically (along rows).
Tensor ConcatRowsT(const std::vector<Tensor>& parts);

/// Inverted dropout: zeroes entries with probability `p` and rescales the
/// survivors by 1/(1-p). Training-time only — skip the op at inference.
Tensor DropoutT(const Tensor& a, float p, core::Rng* rng);

}  // namespace lhmm::nn

#endif  // LHMM_NN_OPS_H_
