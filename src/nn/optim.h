#ifndef LHMM_NN_OPTIM_H_
#define LHMM_NN_OPTIM_H_

#include <vector>

#include "nn/tensor.h"

namespace lhmm::nn {

/// Adam hyperparameters; defaults match the paper's setup (lr 1e-3, weight
/// decay 1e-4). Weight decay is decoupled (AdamW style).
struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 1e-4f;
};

/// Adam optimizer over a fixed parameter list.
class Adam {
 public:
  Adam(std::vector<Tensor> params, const AdamConfig& config);

  /// Applies one update from the accumulated gradients. Parameters whose
  /// gradient was never touched this step are left unchanged.
  void Step();

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Overrides the learning rate (for schedules).
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

  const std::vector<Tensor>& params() const { return params_; }

 private:
  std::vector<Tensor> params_;
  AdamConfig config_;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
  int t_ = 0;
};

/// SGD with momentum and decoupled weight decay; the simple baseline
/// optimizer (useful for optimizer ablations and tests).
struct SgdConfig {
  float lr = 1e-2f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Tensor> params, const SgdConfig& config);

  void Step();
  void ZeroGrad();

  const std::vector<Tensor>& params() const { return params_; }

 private:
  std::vector<Tensor> params_;
  SgdConfig config_;
  std::vector<Matrix> velocity_;
};

/// Clips the global L2 norm of all parameter gradients to `max_norm`;
/// returns the pre-clip norm. Call between Backward() and Step().
float ClipGradNorm(const std::vector<Tensor>& params, float max_norm);

/// Cosine learning-rate schedule from `base_lr` down to `min_lr` over
/// `total_steps`; returns the rate for `step`.
float CosineLr(float base_lr, float min_lr, int step, int total_steps);

/// Step-decay schedule: base_lr * gamma^(step / step_size).
float StepDecayLr(float base_lr, float gamma, int step, int step_size);

}  // namespace lhmm::nn

#endif  // LHMM_NN_OPTIM_H_
