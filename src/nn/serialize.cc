#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>

#include "core/strings.h"

namespace lhmm::nn {

namespace {
constexpr uint32_t kMagic = 0x4c484d4d;  // "LHMM"

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n);
}
}  // namespace

void SerializeParams(const std::vector<Tensor>& params, std::string* out) {
  const uint32_t count = static_cast<uint32_t>(params.size());
  AppendRaw(out, &count, sizeof(count));
  for (const Tensor& p : params) {
    const int32_t rows = p.rows();
    const int32_t cols = p.cols();
    AppendRaw(out, &rows, sizeof(rows));
    AppendRaw(out, &cols, sizeof(cols));
    AppendRaw(out, p.value().data(), sizeof(float) * p.value().size());
  }
}

core::Status DeserializeParams(const void* data, size_t size,
                               const std::string& origin,
                               std::vector<Tensor>* params) {
  const char* base = reinterpret_cast<const char*>(data);
  size_t off = 0;
  auto read = [&](void* dst, size_t n) {
    if (off + n > size) return false;
    std::memcpy(dst, base + off, n);
    off += n;
    return true;
  };
  uint32_t count = 0;
  if (!read(&count, sizeof(count))) {
    return core::Status::InvalidArgument(core::StrFormat(
        "%s offset %zu: truncated parameter blob", origin.c_str(), off));
  }
  if (count != params->size()) {
    return core::Status::InvalidArgument(core::StrFormat(
        "%s: parameter count mismatch: blob has %u, model has %zu",
        origin.c_str(), count, params->size()));
  }
  for (Tensor& p : *params) {
    int32_t rows = 0;
    int32_t cols = 0;
    const size_t shape_off = off;
    if (!read(&rows, sizeof(rows)) || !read(&cols, sizeof(cols))) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s offset %zu: truncated parameter blob", origin.c_str(), off));
    }
    if (rows != p.rows() || cols != p.cols()) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s offset %zu: shape mismatch: blob %dx%d vs model %dx%d",
          origin.c_str(), shape_off, rows, cols, p.rows(), p.cols()));
    }
    if (!read(p.mutable_value().data(), sizeof(float) * p.value().size())) {
      return core::Status::InvalidArgument(core::StrFormat(
          "%s offset %zu: truncated parameter blob", origin.c_str(), off));
    }
  }
  if (off != size) {
    return core::Status::InvalidArgument(core::StrFormat(
        "%s offset %zu: %zu trailing bytes after parameters", origin.c_str(),
        off, size - off));
  }
  return core::Status::Ok();
}

core::Status SaveParams(const std::string& path, const std::vector<Tensor>& params) {
  std::string blob;
  const uint32_t magic = kMagic;
  AppendRaw(&blob, &magic, sizeof(magic));
  SerializeParams(params, &blob);
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return core::Status::IoError("cannot open " + path);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!out.good()) return core::Status::IoError("write failed for " + path);
  return core::Status::Ok();
}

core::Status LoadParams(const std::string& path, std::vector<Tensor>* params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return core::Status::IoError("cannot open " + path);
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  uint32_t magic = 0;
  if (blob.size() < sizeof(magic)) {
    return core::Status::InvalidArgument(path + " is not a parameter file");
  }
  std::memcpy(&magic, blob.data(), sizeof(magic));
  if (magic != kMagic) {
    return core::Status::InvalidArgument(path + " is not a parameter file");
  }
  return DeserializeParams(blob.data() + sizeof(magic),
                           blob.size() - sizeof(magic), path, params);
}

}  // namespace lhmm::nn
