#include "nn/serialize.h"

#include <cstdint>
#include <fstream>

#include "core/strings.h"

namespace lhmm::nn {

namespace {
constexpr uint32_t kMagic = 0x4c484d4d;  // "LHMM"
}

core::Status SaveParams(const std::string& path, const std::vector<Tensor>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return core::Status::IoError("cannot open " + path);
  const uint32_t magic = kMagic;
  const uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor& p : params) {
    const int32_t rows = p.rows();
    const int32_t cols = p.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(sizeof(float)) * p.value().size());
  }
  if (!out.good()) return core::Status::IoError("write failed for " + path);
  return core::Status::Ok();
}

core::Status LoadParams(const std::string& path, std::vector<Tensor>* params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return core::Status::IoError("cannot open " + path);
  uint32_t magic = 0;
  uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in.good() || magic != kMagic) {
    return core::Status::InvalidArgument(path + " is not a parameter file");
  }
  if (count != params->size()) {
    return core::Status::InvalidArgument(
        core::StrFormat("parameter count mismatch: file has %u, model has %zu",
                        count, params->size()));
  }
  for (Tensor& p : *params) {
    int32_t rows = 0;
    int32_t cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in.good() || rows != p.rows() || cols != p.cols()) {
      return core::Status::InvalidArgument(
          core::StrFormat("shape mismatch: file %dx%d vs model %dx%d", rows, cols,
                          p.rows(), p.cols()));
    }
    in.read(reinterpret_cast<char*>(p.mutable_value().data()),
            static_cast<std::streamsize>(sizeof(float)) * p.value().size());
    if (!in.good()) return core::Status::IoError("truncated parameter file " + path);
  }
  return core::Status::Ok();
}

}  // namespace lhmm::nn
