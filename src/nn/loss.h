#ifndef LHMM_NN_LOSS_H_
#define LHMM_NN_LOSS_H_

#include <vector>

#include "nn/tensor.h"

namespace lhmm::nn {

/// Mean softmax cross-entropy over rows of `logits` (R x C) against integer
/// `labels`, with label smoothing `epsilon` as in Muller et al. [45]: the
/// target distribution is (1-eps) on the true class and eps/C elsewhere.
/// The gradient is computed analytically (softmax - smoothed one-hot) / R.
Tensor SmoothedCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                            float epsilon);

/// Mean binary cross-entropy with logits over an R x 1 tensor against float
/// targets in [0, 1], with optional label smoothing pulling targets toward
/// 0.5 by `epsilon`.
Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& targets,
                                    float epsilon = 0.0f);

/// Mean squared error between an R x 1 tensor and float targets.
Tensor MeanSquaredError(const Tensor& pred, const std::vector<float>& targets);

}  // namespace lhmm::nn

#endif  // LHMM_NN_LOSS_H_
