#include "nn/matrix.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::nn {

Matrix Matrix::Xavier(int rows, int cols, core::Rng* rng) {
  Matrix m(rows, cols);
  const float bound = std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Uniform(-bound, bound));
  }
  return m;
}

Matrix Matrix::Gaussian(int rows, int cols, float sigma, core::Rng* rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Normal(0.0, sigma));
  }
  return m;
}

Matrix Matrix::RowVector(const std::vector<float>& values) {
  Matrix m(1, static_cast<int>(values.size()));
  std::copy(values.begin(), values.end(), m.data());
  return m;
}

void Matrix::Accumulate(const Matrix& o) {
  CHECK(SameShape(o));
  for (int i = 0; i < size(); ++i) data_[i] += o.data_[i];
}

void Matrix::Scale(float s) {
  for (float& v : data_) v *= s;
}

float Matrix::SquaredNorm() const {
  float out = 0.0f;
  for (float v : data_) out += v * v;
  return out;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    float* crow = c.Row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0f) continue;
      const float* brow = b.Row(k);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    const float* arow = a.Row(k);
    const float* brow = b.Row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = c.Row(i);
      for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const float* brow = b.Row(j);
      float dot = 0.0f;
      for (int k = 0; k < a.cols(); ++k) dot += arow[k] * brow[k];
      crow[j] = dot;
    }
  }
  return c;
}

Matrix AddMat(const Matrix& a, const Matrix& b) {
  CHECK(a.SameShape(b));
  Matrix c = a;
  c.Accumulate(b);
  return c;
}

Matrix SubMat(const Matrix& a, const Matrix& b) {
  CHECK(a.SameShape(b));
  Matrix c = a;
  for (int i = 0; i < c.size(); ++i) c.data()[i] -= b.data()[i];
  return c;
}

Matrix MulMat(const Matrix& a, const Matrix& b) {
  CHECK(a.SameShape(b));
  Matrix c = a;
  for (int i = 0; i < c.size(); ++i) c.data()[i] *= b.data()[i];
  return c;
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& row) {
  CHECK_EQ(row.rows(), 1);
  CHECK_EQ(row.cols(), a.cols());
  Matrix c = a;
  for (int i = 0; i < c.rows(); ++i) {
    float* crow = c.Row(i);
    for (int j = 0; j < c.cols(); ++j) crow[j] += row(0, j);
  }
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix c(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) c(j, i) = a(i, j);
  }
  return c;
}

Matrix SoftmaxRows(const Matrix& a) {
  Matrix c = a;
  for (int i = 0; i < c.rows(); ++i) {
    float* row = c.Row(i);
    float max_v = row[0];
    for (int j = 1; j < c.cols(); ++j) max_v = std::max(max_v, row[j]);
    float sum = 0.0f;
    for (int j = 0; j < c.cols(); ++j) {
      row[j] = std::exp(row[j] - max_v);
      sum += row[j];
    }
    for (int j = 0; j < c.cols(); ++j) row[j] /= sum;
  }
  return c;
}

Matrix SumRowsOf(const Matrix& a) {
  Matrix c(1, a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.Row(i);
    for (int j = 0; j < a.cols(); ++j) c(0, j) += row[j];
  }
  return c;
}

}  // namespace lhmm::nn
