#include "nn/optim.h"

#include <cmath>

#include "core/logging.h"

namespace lhmm::nn {

Adam::Adam(std::vector<Tensor> params, const AdamConfig& config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Tensor& p : params_) {
    CHECK(p.defined());
    CHECK(p.requires_grad());
    m_.emplace_back(p.rows(), p.cols());
    v_.emplace_back(p.rows(), p.cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bias1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bias2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().size() == 0) continue;
    Matrix& value = p.mutable_value();
    const Matrix& g = p.grad();
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    for (int j = 0; j < value.size(); ++j) {
      const float gj = g.data()[j];
      m.data()[j] = config_.beta1 * m.data()[j] + (1.0f - config_.beta1) * gj;
      v.data()[j] = config_.beta2 * v.data()[j] + (1.0f - config_.beta2) * gj * gj;
      const float mhat = m.data()[j] / bias1;
      const float vhat = v.data()[j] / bias2;
      value.data()[j] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) +
                                       config_.weight_decay * value.data()[j]);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, const SgdConfig& config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Tensor& p : params_) {
    CHECK(p.defined());
    CHECK(p.requires_grad());
    velocity_.emplace_back(p.rows(), p.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    if (p.grad().size() == 0) continue;
    Matrix& value = p.mutable_value();
    const Matrix& g = p.grad();
    Matrix& v = velocity_[i];
    for (int j = 0; j < value.size(); ++j) {
      v.data()[j] = config_.momentum * v.data()[j] + g.data()[j];
      value.data()[j] -= config_.lr * (v.data()[j] +
                                       config_.weight_decay * value.data()[j]);
    }
  }
}

void Sgd::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

float ClipGradNorm(const std::vector<Tensor>& params, float max_norm) {
  double total = 0.0;
  for (const Tensor& p : params) {
    if (p.grad().size() == 0) continue;
    total += p.grad().SquaredNorm();
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const Tensor& p : params) {
      if (p.grad().size() == 0) continue;
      // Gradients are mutated in place through the node.
      const_cast<Matrix&>(p.grad()).Scale(scale);
    }
  }
  return norm;
}

float CosineLr(float base_lr, float min_lr, int step, int total_steps) {
  CHECK_GT(total_steps, 0);
  const float t = std::min(1.0f, static_cast<float>(step) / total_steps);
  return min_lr + 0.5f * (base_lr - min_lr) * (1.0f + std::cos(t * 3.14159265f));
}

float StepDecayLr(float base_lr, float gamma, int step, int step_size) {
  CHECK_GT(step_size, 0);
  return base_lr * std::pow(gamma, static_cast<float>(step / step_size));
}

}  // namespace lhmm::nn
