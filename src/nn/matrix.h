#ifndef LHMM_NN_MATRIX_H_
#define LHMM_NN_MATRIX_H_

#include <vector>

#include "core/rng.h"

namespace lhmm::nn {

/// Dense row-major float matrix: the numeric workhorse under the autodiff
/// tape. Sized for the small models this library trains (hundreds of rows,
/// dozens of columns), so the kernels are simple loops.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}
  Matrix(int rows, int cols, float fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Full(int rows, int cols, float v) { return Matrix(rows, cols, v); }
  /// Xavier/Glorot-uniform initialization.
  static Matrix Xavier(int rows, int cols, core::Rng* rng);
  /// Entries drawn i.i.d. from N(0, sigma^2).
  static Matrix Gaussian(int rows, int cols, float sigma, core::Rng* rng);
  /// 1 x values.size() row vector.
  static Matrix RowVector(const std::vector<float>& values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool SameShape(const Matrix& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  float& operator()(int r, int c) { return data_[r * cols_ + c]; }
  float operator()(int r, int c) const { return data_[r * cols_ + c]; }
  float* Row(int r) { return data_.data() + r * cols_; }
  const float* Row(int r) const { return data_.data() + r * cols_; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// In-place element-wise accumulate: *this += o. Shapes must match.
  void Accumulate(const Matrix& o);

  /// In-place scale: *this *= s.
  void Scale(float s);

  /// Frobenius-norm squared.
  float SquaredNorm() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B.
Matrix MatMul(const Matrix& a, const Matrix& b);
/// C = A^T * B (avoids materializing the transpose).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
/// Element-wise sum.
Matrix AddMat(const Matrix& a, const Matrix& b);
/// Element-wise difference.
Matrix SubMat(const Matrix& a, const Matrix& b);
/// Element-wise (Hadamard) product.
Matrix MulMat(const Matrix& a, const Matrix& b);
/// Adds row vector `row` (1 x C) to every row of `a` (R x C).
Matrix AddRowBroadcast(const Matrix& a, const Matrix& row);
/// Transpose.
Matrix Transpose(const Matrix& a);
/// Per-row softmax.
Matrix SoftmaxRows(const Matrix& a);
/// Column-wise sum producing a 1 x C row vector.
Matrix SumRowsOf(const Matrix& a);

}  // namespace lhmm::nn

#endif  // LHMM_NN_MATRIX_H_
