#include "nn/tensor.h"

#include <unordered_set>

#include "core/logging.h"

namespace lhmm::nn {

void TensorNode::AddGrad(const Matrix& g) {
  if (grad.size() == 0) {
    grad = Matrix::Zeros(value.rows(), value.cols());
  }
  grad.Accumulate(g);
}

Tensor::Tensor(Matrix value, bool requires_grad) {
  node_ = std::make_shared<TensorNode>();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

void Tensor::ZeroGrad() {
  if (node_->grad.size() != 0) node_->grad.Fill(0.0f);
}

Tensor Tensor::FromOp(Matrix value, std::vector<Tensor> parents,
                      std::function<void(TensorNode*)> backward_fn) {
  Tensor t;
  t.node_ = std::make_shared<TensorNode>();
  t.node_->value = std::move(value);
  bool any_grad = false;
  for (const Tensor& p : parents) {
    CHECK(p.defined());
    any_grad = any_grad || p.node()->requires_grad;
    t.node_->parents.push_back(p.node());
  }
  t.node_->requires_grad = any_grad;
  if (any_grad) t.node_->backward_fn = std::move(backward_fn);
  return t;
}

void Backward(const Tensor& loss) {
  CHECK(loss.defined());
  CHECK_EQ(loss.rows(), 1);
  CHECK_EQ(loss.cols(), 1);

  // Iterative post-order DFS to topologically sort the graph.
  std::vector<TensorNode*> order;
  std::unordered_set<TensorNode*> visited;
  struct Frame {
    TensorNode* node;
    size_t next_parent = 0;
  };
  std::vector<Frame> stack;
  if (loss.node()->requires_grad) {
    stack.push_back({loss.node().get(), 0});
    visited.insert(loss.node().get());
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorNode* parent = frame.node->parents[frame.next_parent].get();
      ++frame.next_parent;
      if (parent->requires_grad && !visited.count(parent)) {
        visited.insert(parent);
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  loss.node()->AddGrad(Matrix::Full(1, 1, 1.0f));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorNode* node = *it;
    if (node->backward_fn && node->grad.size() != 0) {
      node->backward_fn(node);
    }
  }
}

}  // namespace lhmm::nn
