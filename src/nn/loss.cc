#include "nn/loss.h"

#include <cmath>

#include "core/logging.h"

namespace lhmm::nn {

Tensor SmoothedCrossEntropy(const Tensor& logits, const std::vector<int>& labels,
                            float epsilon) {
  const int r = logits.rows();
  const int c = logits.cols();
  CHECK_EQ(static_cast<int>(labels.size()), r);
  CHECK_GT(r, 0);

  const Matrix probs = SoftmaxRows(logits.value());
  // Forward: mean of -(sum_k target_k * log p_k).
  double loss = 0.0;
  const float off = epsilon / static_cast<float>(c);
  const float on = 1.0f - epsilon + off;
  for (int i = 0; i < r; ++i) {
    const float* prow = probs.Row(i);
    CHECK_GE(labels[i], 0);
    CHECK_LT(labels[i], c);
    for (int j = 0; j < c; ++j) {
      const float target = (j == labels[i]) ? on : off;
      if (target > 0.0f) loss -= target * std::log(std::max(prow[j], 1e-12f));
    }
  }
  loss /= r;

  return Tensor::FromOp(
      Matrix::Full(1, 1, static_cast<float>(loss)), {logits},
      [probs, labels, on, off, r, c](TensorNode* node) {
        const float upstream = node->grad(0, 0);
        Matrix dlogits = probs;
        for (int i = 0; i < r; ++i) {
          float* row = dlogits.Row(i);
          for (int j = 0; j < c; ++j) {
            const float target = (j == labels[i]) ? on : off;
            row[j] = (row[j] - target) * upstream / static_cast<float>(r);
          }
        }
        if (node->parents[0]->requires_grad) node->parents[0]->AddGrad(dlogits);
      });
}

Tensor BinaryCrossEntropyWithLogits(const Tensor& logits,
                                    const std::vector<float>& targets,
                                    float epsilon) {
  const int r = logits.rows();
  CHECK_EQ(logits.cols(), 1);
  CHECK_EQ(static_cast<int>(targets.size()), r);
  CHECK_GT(r, 0);

  Matrix sig = logits.value();
  for (int i = 0; i < sig.size(); ++i) {
    sig.data()[i] = 1.0f / (1.0f + std::exp(-sig.data()[i]));
  }
  std::vector<float> smoothed(targets);
  for (float& t : smoothed) t = t * (1.0f - epsilon) + 0.5f * epsilon;

  double loss = 0.0;
  for (int i = 0; i < r; ++i) {
    const float p = std::min(std::max(sig(i, 0), 1e-7f), 1.0f - 1e-7f);
    loss -= smoothed[i] * std::log(p) + (1.0f - smoothed[i]) * std::log(1.0f - p);
  }
  loss /= r;

  return Tensor::FromOp(Matrix::Full(1, 1, static_cast<float>(loss)), {logits},
                        [sig, smoothed, r](TensorNode* node) {
                          const float upstream = node->grad(0, 0);
                          Matrix d(r, 1);
                          for (int i = 0; i < r; ++i) {
                            d(i, 0) = (sig(i, 0) - smoothed[i]) * upstream /
                                      static_cast<float>(r);
                          }
                          if (node->parents[0]->requires_grad) {
                            node->parents[0]->AddGrad(d);
                          }
                        });
}

Tensor MeanSquaredError(const Tensor& pred, const std::vector<float>& targets) {
  const int r = pred.rows();
  CHECK_EQ(pred.cols(), 1);
  CHECK_EQ(static_cast<int>(targets.size()), r);
  CHECK_GT(r, 0);
  double loss = 0.0;
  for (int i = 0; i < r; ++i) {
    const double d = pred.value()(i, 0) - targets[i];
    loss += d * d;
  }
  loss /= r;
  return Tensor::FromOp(Matrix::Full(1, 1, static_cast<float>(loss)), {pred},
                        [targets, r](TensorNode* node) {
                          const float upstream = node->grad(0, 0);
                          const Matrix& p = node->parents[0]->value;
                          Matrix d(r, 1);
                          for (int i = 0; i < r; ++i) {
                            d(i, 0) = 2.0f * (p(i, 0) - targets[i]) * upstream /
                                      static_cast<float>(r);
                          }
                          if (node->parents[0]->requires_grad) {
                            node->parents[0]->AddGrad(d);
                          }
                        });
}

}  // namespace lhmm::nn
