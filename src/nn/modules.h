#ifndef LHMM_NN_MODULES_H_
#define LHMM_NN_MODULES_H_

#include <memory>
#include <vector>

#include "core/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace lhmm::nn {

/// Base class of trainable components. Parameters are Tensors with
/// requires_grad set; CollectParams exposes them to the optimizer and to
/// the serializer.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends all trainable parameters to `out` in a stable order.
  virtual void CollectParams(std::vector<Tensor>* out) = 0;

  /// Convenience wrapper around CollectParams.
  std::vector<Tensor> Params() {
    std::vector<Tensor> out;
    CollectParams(&out);
    return out;
  }
};

/// Affine layer y = x W + b with Xavier init.
class Linear : public Module {
 public:
  Linear(int in_dim, int out_dim, core::Rng* rng);

  /// Autodiff forward for training.
  Tensor Forward(const Tensor& x) const;

  /// Plain-matrix forward for inference (no tape).
  Matrix Forward(const Matrix& x) const;

  void CollectParams(std::vector<Tensor>* out) override;

  int in_dim() const { return weight_.rows(); }
  int out_dim() const { return weight_.cols(); }

 private:
  Tensor weight_;  ///< in_dim x out_dim.
  Tensor bias_;    ///< 1 x out_dim.
};

/// Multilayer perceptron: Linear -> ReLU -> ... -> Linear (no activation on
/// the output layer).
class Mlp : public Module {
 public:
  /// `dims` lists layer widths including input and output, e.g. {96, 64, 1}.
  Mlp(const std::vector<int>& dims, core::Rng* rng);

  Tensor Forward(const Tensor& x) const;
  Matrix Forward(const Matrix& x) const;

  void CollectParams(std::vector<Tensor>* out) override;

 private:
  std::vector<Linear> layers_;
};

/// Learnable embedding table. Equivalent to the paper's W_init applied to
/// one-hot vectors: h_i^(0) = W_init^T v_i (Section IV-B).
class Embedding : public Module {
 public:
  Embedding(int count, int dim, core::Rng* rng);

  /// Gathers rows for `indices` on the tape.
  Tensor Forward(const std::vector<int>& indices) const;

  /// Whole table as a tensor (for full-graph message passing).
  const Tensor& table() const { return table_; }

  void CollectParams(std::vector<Tensor>* out) override;

  int count() const { return table_.rows(); }
  int dim() const { return table_.cols(); }

 private:
  Tensor table_;
};

/// Additive (Bahdanau-style) attention matching the paper's Eq. (6)/(9):
///   score_j = w_v . tanh(W_q q  (+)  W_k k_j),  alpha = softmax(score),
///   context = sum_j alpha_j v_j.
class AdditiveAttention : public Module {
 public:
  AdditiveAttention(int query_dim, int key_dim, int hidden_dim, core::Rng* rng);

  /// `query` is 1 x query_dim; `keys` is n x key_dim; `values` is n x value
  /// dim. Returns the 1 x value-dim context vector; if `weights_out` is
  /// non-null it receives the 1 x n attention weights.
  Tensor Forward(const Tensor& query, const Tensor& keys, const Tensor& values,
                 Tensor* weights_out = nullptr) const;

  /// Inference variant on plain matrices.
  Matrix Forward(const Matrix& query, const Matrix& keys, const Matrix& values,
                 Matrix* weights_out = nullptr) const;

  /// Precomputes W_k keys for reuse across many queries over the same key
  /// set (one trajectory's points are attended once per candidate road).
  Matrix ProjectKeys(const Matrix& keys) const;

  /// Inference forward with keys already projected by ProjectKeys().
  Matrix ForwardProjected(const Matrix& query, const Matrix& projected_keys,
                          const Matrix& values, Matrix* weights_out = nullptr) const;

  void CollectParams(std::vector<Tensor>* out) override;

 private:
  Linear query_proj_;
  Linear key_proj_;
  Linear score_;  ///< 2*hidden -> 1.
};

}  // namespace lhmm::nn

#endif  // LHMM_NN_MODULES_H_
