#ifndef LHMM_NN_TENSOR_H_
#define LHMM_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/matrix.h"

namespace lhmm::nn {

class Tensor;

/// A node of the reverse-mode autodiff graph.
struct TensorNode {
  Matrix value;
  Matrix grad;  ///< Lazily sized on first gradient contribution.
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorNode>> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(TensorNode*)> backward_fn;

  /// Accumulates `g` into `grad`, allocating it on first use.
  void AddGrad(const Matrix& g);
};

/// A shared handle to a TensorNode. Copying a Tensor aliases the node, like
/// the usual deep-learning-framework semantics. Build graphs with the free
/// functions in ops.h, call Backward() on a scalar loss, and read parameter
/// gradients through grad().
class Tensor {
 public:
  Tensor() = default;
  /// Leaf tensor wrapping `value`; set `requires_grad` for parameters.
  explicit Tensor(Matrix value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Matrix& value() const { return node_->value; }
  Matrix& mutable_value() { return node_->value; }
  const Matrix& grad() const { return node_->grad; }
  bool requires_grad() const { return node_->requires_grad; }
  int rows() const { return node_->value.rows(); }
  int cols() const { return node_->value.cols(); }

  /// Resets the stored gradient to zero (keeps the allocation).
  void ZeroGrad();

  std::shared_ptr<TensorNode> node() const { return node_; }

  /// Internal: creates an interior node. `requires_grad` is inferred from the
  /// parents.
  static Tensor FromOp(Matrix value, std::vector<Tensor> parents,
                       std::function<void(TensorNode*)> backward_fn);

 private:
  std::shared_ptr<TensorNode> node_;
};

/// Runs reverse-mode differentiation from scalar tensor `loss` (must be 1x1),
/// accumulating into the `grad` of every reachable node with requires_grad.
void Backward(const Tensor& loss);

}  // namespace lhmm::nn

#endif  // LHMM_NN_TENSOR_H_
