#ifndef LHMM_NN_SERIALIZE_H_
#define LHMM_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "nn/tensor.h"

namespace lhmm::nn {

/// Writes all parameter values to a binary file (shapes + float payloads).
core::Status SaveParams(const std::string& path, const std::vector<Tensor>& params);

/// Loads parameter values in place. The file's tensor count and shapes must
/// match `params` exactly.
core::Status LoadParams(const std::string& path, std::vector<Tensor>* params);

}  // namespace lhmm::nn

#endif  // LHMM_NN_SERIALIZE_H_
