#ifndef LHMM_NN_SERIALIZE_H_
#define LHMM_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "nn/tensor.h"

namespace lhmm::nn {

/// Writes all parameter values to a binary file (shapes + float payloads).
core::Status SaveParams(const std::string& path, const std::vector<Tensor>& params);

/// Loads parameter values in place. The file's tensor count and shapes must
/// match `params` exactly.
core::Status LoadParams(const std::string& path, std::vector<Tensor>* params);

/// Appends the in-memory form of a parameter set to `out`: u32 count, then
/// per tensor i32 rows, i32 cols, float payload. SaveParams is exactly a
/// magic word plus this blob; the mmap store embeds the blob directly so a
/// weight section and a weight file validate through one decoder.
void SerializeParams(const std::vector<Tensor>& params, std::string* out);

/// Applies a SerializeParams blob (read in place from `data`, no intermediate
/// copy) onto `params`. Count and shapes must match exactly; errors are typed
/// with `origin` and the byte offset of the mismatch.
core::Status DeserializeParams(const void* data, size_t size,
                               const std::string& origin,
                               std::vector<Tensor>* params);

}  // namespace lhmm::nn

#endif  // LHMM_NN_SERIALIZE_H_
