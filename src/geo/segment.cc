#include "geo/segment.h"

#include <algorithm>

namespace lhmm::geo {

SegmentProjection ProjectOntoSegment(const Point& p, const Point& a, const Point& b) {
  const Point ab = b - a;
  const double len_sq = Dot(ab, ab);
  SegmentProjection out;
  if (len_sq <= 0.0) {
    out.point = a;
    out.t = 0.0;
  } else {
    out.t = std::clamp(Dot(p - a, ab) / len_sq, 0.0, 1.0);
    out.point = a + ab * out.t;
  }
  out.dist = Distance(p, out.point);
  return out;
}

double DistanceToSegment(const Point& p, const Point& a, const Point& b) {
  return ProjectOntoSegment(p, a, b).dist;
}

namespace {
int Orientation(const Point& a, const Point& b, const Point& c) {
  const double v = Cross(b - a, c - a);
  if (v > 1e-12) return 1;
  if (v < -1e-12) return -1;
  return 0;
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  return std::min(a.x, b.x) - 1e-12 <= p.x && p.x <= std::max(a.x, b.x) + 1e-12 &&
         std::min(a.y, b.y) - 1e-12 <= p.y && p.y <= std::max(a.y, b.y) + 1e-12;
}
}  // namespace

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  const int o1 = Orientation(a1, a2, b1);
  const int o2 = Orientation(a1, a2, b2);
  const int o3 = Orientation(b1, b2, a1);
  const int o4 = Orientation(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(a1, a2, b1)) return true;
  if (o2 == 0 && OnSegment(a1, a2, b2)) return true;
  if (o3 == 0 && OnSegment(b1, b2, a1)) return true;
  if (o4 == 0 && OnSegment(b1, b2, a2)) return true;
  return false;
}

}  // namespace lhmm::geo
