#include "geo/polyline.h"

#include <algorithm>

#include "core/logging.h"

namespace lhmm::geo {

Polyline::Polyline(std::vector<Point> points) : points_(std::move(points)) {
  CHECK_GE(points_.size(), 2u) << "polyline needs at least two vertices";
  cumulative_.resize(points_.size());
  cumulative_[0] = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    cumulative_[i] = cumulative_[i - 1] + Distance(points_[i - 1], points_[i]);
  }
  length_ = cumulative_.back();
  for (const Point& p : points_) bounds_.Extend(p);
}

PolylineProjection Polyline::Project(const Point& p) const {
  PolylineProjection best;
  best.dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    const SegmentProjection sp = ProjectOntoSegment(p, points_[i], points_[i + 1]);
    if (sp.dist < best.dist) {
      best.dist = sp.dist;
      best.point = sp.point;
      best.segment = static_cast<int>(i);
      best.offset = cumulative_[i] + sp.t * (cumulative_[i + 1] - cumulative_[i]);
    }
  }
  return best;
}

Point Polyline::PointAt(double offset) const {
  if (offset <= 0.0) return points_.front();
  if (offset >= length_) return points_.back();
  // First vertex with cumulative >= offset.
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), offset);
  const size_t hi = static_cast<size_t>(it - cumulative_.begin());
  if (hi == 0) return points_.front();
  const size_t lo = hi - 1;
  const double span = cumulative_[hi] - cumulative_[lo];
  const double t = span > 0.0 ? (offset - cumulative_[lo]) / span : 0.0;
  return Lerp(points_[lo], points_[hi], t);
}

double Polyline::BearingAt(double offset) const {
  offset = std::clamp(offset, 0.0, length_);
  size_t lo = 0;
  for (size_t i = 0; i + 1 < points_.size(); ++i) {
    if (cumulative_[i + 1] >= offset) {
      lo = i;
      break;
    }
    lo = i;
  }
  return Bearing(points_[lo], points_[lo + 1]);
}

double Polyline::TotalTurn() const { return TotalTurnOfPoints(points_); }

double TotalTurnOfPoints(const std::vector<Point>& pts) {
  double total = 0.0;
  for (size_t i = 0; i + 2 < pts.size(); ++i) {
    const double b1 = Bearing(pts[i], pts[i + 1]);
    const double b2 = Bearing(pts[i + 1], pts[i + 2]);
    total += AngleDiff(b1, b2);
  }
  return total;
}

}  // namespace lhmm::geo
