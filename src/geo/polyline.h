#ifndef LHMM_GEO_POLYLINE_H_
#define LHMM_GEO_POLYLINE_H_

#include <vector>

#include "geo/bbox.h"
#include "geo/point.h"
#include "geo/segment.h"

namespace lhmm::geo {

/// Result of projecting a point onto a polyline.
struct PolylineProjection {
  Point point;          ///< Closest point on the polyline.
  double dist = 0.0;    ///< Distance from the query to `point`.
  double offset = 0.0;  ///< Arc-length offset of `point` from the start.
  int segment = 0;      ///< Index of the vertex pair containing `point`.
};

/// An immutable open polyline with at least two vertices. Road segment
/// geometries, corridors, and matched paths are all polylines.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> points);

  /// Number of vertices.
  int size() const { return static_cast<int>(points_.size()); }
  const std::vector<Point>& points() const { return points_; }
  const Point& front() const { return points_.front(); }
  const Point& back() const { return points_.back(); }
  const Point& operator[](int i) const { return points_[i]; }

  /// Total arc length in meters.
  double Length() const { return length_; }

  /// Cumulative arc length up to vertex `i` (0 for the first vertex).
  double OffsetOfVertex(int i) const { return cumulative_[i]; }

  /// Closest point on the polyline to `p`.
  PolylineProjection Project(const Point& p) const;

  /// Point at arc-length `offset` from the start (clamped to [0, Length]).
  Point PointAt(double offset) const;

  /// Direction (radians from +x) of the polyline at arc-length `offset`.
  double BearingAt(double offset) const;

  /// Sum of absolute heading changes over the whole line, in radians. The
  /// paper's "number of turns" explicit feature is this quantity.
  double TotalTurn() const;

  /// Bounding box of all vertices.
  const BBox& Bounds() const { return bounds_; }

 private:
  std::vector<Point> points_;
  std::vector<double> cumulative_;
  double length_ = 0.0;
  BBox bounds_;
};

/// Sum of absolute heading changes along an ordered point sequence (radians).
/// Works on raw point vectors so trajectories can reuse it without an
/// intermediate Polyline.
double TotalTurnOfPoints(const std::vector<Point>& pts);

}  // namespace lhmm::geo

#endif  // LHMM_GEO_POLYLINE_H_
