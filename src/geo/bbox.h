#ifndef LHMM_GEO_BBOX_H_
#define LHMM_GEO_BBOX_H_

#include <limits>

#include "geo/point.h"

namespace lhmm::geo {

/// Axis-aligned bounding box in the local planar frame.
struct BBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  /// True until the first Extend().
  bool Empty() const { return min_x > max_x; }

  /// Grows the box to cover `p`.
  void Extend(const Point& p) {
    if (p.x < min_x) min_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.x > max_x) max_x = p.x;
    if (p.y > max_y) max_y = p.y;
  }

  /// Grows the box outward by `margin` meters on every side.
  void Inflate(double margin) {
    min_x -= margin;
    min_y -= margin;
    max_x += margin;
    max_y += margin;
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const BBox& o) const {
    return !(o.min_x > max_x || o.max_x < min_x || o.min_y > max_y || o.max_y < min_y);
  }

  double Width() const { return Empty() ? 0.0 : max_x - min_x; }
  double Height() const { return Empty() ? 0.0 : max_y - min_y; }
  Point Center() const { return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0}; }
};

}  // namespace lhmm::geo

#endif  // LHMM_GEO_BBOX_H_
