#include "geo/latlon.h"

#include <cmath>

namespace lhmm::geo {

namespace {
constexpr double kEarthRadiusMeters = 6371008.8;
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

LocalProjection::LocalProjection(const LatLon& origin) : origin_(origin) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kDegToRad;
  meters_per_deg_lon_ =
      kEarthRadiusMeters * kDegToRad * std::cos(origin.lat * kDegToRad);
}

Point LocalProjection::Forward(const LatLon& ll) const {
  return {(ll.lon - origin_.lon) * meters_per_deg_lon_,
          (ll.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLon LocalProjection::Backward(const Point& p) const {
  return {origin_.lat + p.y / meters_per_deg_lat_,
          origin_.lon + p.x / meters_per_deg_lon_};
}

}  // namespace lhmm::geo
