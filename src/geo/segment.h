#ifndef LHMM_GEO_SEGMENT_H_
#define LHMM_GEO_SEGMENT_H_

#include "geo/point.h"

namespace lhmm::geo {

/// Result of projecting a point onto a line segment.
struct SegmentProjection {
  Point point;      ///< Closest point on the segment.
  double t = 0.0;   ///< Parameter along the segment in [0, 1].
  double dist = 0;  ///< Euclidean distance from the query to `point`.
};

/// Projects `p` onto the segment a->b (clamped to the segment's extent).
SegmentProjection ProjectOntoSegment(const Point& p, const Point& a, const Point& b);

/// Distance from `p` to the segment a->b.
double DistanceToSegment(const Point& p, const Point& a, const Point& b);

/// Returns true if the segments a1->a2 and b1->b2 intersect (including
/// touching endpoints); used by the synthetic network generator.
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

}  // namespace lhmm::geo

#endif  // LHMM_GEO_SEGMENT_H_
