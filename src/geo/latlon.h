#ifndef LHMM_GEO_LATLON_H_
#define LHMM_GEO_LATLON_H_

#include "geo/point.h"

namespace lhmm::geo {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance between two coordinates, in meters (haversine).
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Equirectangular projection around a reference coordinate. Cities span a few
/// tens of kilometers, where this projection's error is far below cellular
/// positioning noise, so it is the library's standard map projection.
class LocalProjection {
 public:
  explicit LocalProjection(const LatLon& origin);

  /// Projects a WGS-84 coordinate to local planar meters.
  Point Forward(const LatLon& ll) const;

  /// Inverse projection back to WGS-84 degrees.
  LatLon Backward(const Point& p) const;

  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace lhmm::geo

#endif  // LHMM_GEO_LATLON_H_
