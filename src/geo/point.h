#ifndef LHMM_GEO_POINT_H_
#define LHMM_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace lhmm::geo {

/// A point (or vector) in the local planar frame, in meters. All geometry in
/// the library runs in this frame; `latlon.h` converts to and from WGS-84.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  Point operator/(double s) const { return {x / s, y / s}; }
  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Dot product.
inline double Dot(const Point& a, const Point& b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the 2-D cross product (signed parallelogram area).
inline double Cross(const Point& a, const Point& b) { return a.x * b.y - a.y * b.x; }

/// Euclidean norm.
inline double Norm(const Point& p) { return std::sqrt(p.x * p.x + p.y * p.y); }

/// Euclidean distance between two points, in meters.
inline double Distance(const Point& a, const Point& b) { return Norm(a - b); }

/// Squared Euclidean distance (avoids the sqrt for comparisons).
inline double DistanceSq(const Point& a, const Point& b) {
  const Point d = a - b;
  return d.x * d.x + d.y * d.y;
}

/// Linear interpolation: a at t=0, b at t=1.
inline Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// Heading of the vector a->b in radians, measured from +x axis, in (-pi, pi].
inline double Bearing(const Point& a, const Point& b) {
  return std::atan2(b.y - a.y, b.x - a.x);
}

/// Smallest absolute difference between two angles in radians, in [0, pi].
inline double AngleDiff(double a, double b) {
  double d = std::fmod(a - b, 2.0 * M_PI);
  if (d > M_PI) d -= 2.0 * M_PI;
  if (d < -M_PI) d += 2.0 * M_PI;
  return std::fabs(d);
}

}  // namespace lhmm::geo

#endif  // LHMM_GEO_POINT_H_
