#include "srv/journal_events.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/strings.h"

namespace lhmm::srv {

namespace {

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

core::Status Malformed(const std::string& payload) {
  return core::Status::InvalidArgument("malformed journal event: '" + payload +
                                       "'");
}

bool ParseI64(const std::string& tok, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end == tok.c_str() || *end != '\0') return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseF64(const std::string& tok, double* out) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

std::string FormatOpenEvent(int64_t id, int tier) {
  return core::StrFormat("open %lld %d", static_cast<long long>(id), tier);
}

std::string FormatPushEvent(int64_t id, const traj::TrajPoint& point) {
  return core::StrFormat("push %lld %.17g %.17g %.17g %lld",
                         static_cast<long long>(id), point.pos.x, point.pos.y,
                         point.t, static_cast<long long>(point.tower));
}

std::string FormatFinishEvent(int64_t id) {
  return core::StrFormat("finish %lld", static_cast<long long>(id));
}

std::string FormatDeadlineEvent(int64_t id, int64_t deadline_tick) {
  return core::StrFormat("deadline %lld %lld", static_cast<long long>(id),
                         static_cast<long long>(deadline_tick));
}

std::string FormatTickEvent(int64_t now) {
  return core::StrFormat("tick %lld", static_cast<long long>(now));
}

core::Result<JournalEvent> ParseJournalEvent(const std::string& payload) {
  const std::vector<std::string> tok = SplitTokens(payload);
  if (tok.empty()) return Malformed(payload);
  JournalEvent ev;
  if (tok[0] == "open") {
    ev.kind = JournalEvent::Kind::kOpen;
    int64_t tier = 0;
    if (tok.size() != 3 || !ParseI64(tok[1], &ev.id) ||
        !ParseI64(tok[2], &tier)) {
      return Malformed(payload);
    }
    ev.tier = static_cast<int>(tier);
    return ev;
  }
  if (tok[0] == "push") {
    ev.kind = JournalEvent::Kind::kPush;
    int64_t tower = 0;
    if (tok.size() != 6 || !ParseI64(tok[1], &ev.id) ||
        !ParseF64(tok[2], &ev.point.pos.x) ||
        !ParseF64(tok[3], &ev.point.pos.y) || !ParseF64(tok[4], &ev.point.t) ||
        !ParseI64(tok[5], &tower)) {
      return Malformed(payload);
    }
    ev.point.tower = static_cast<traj::TowerId>(tower);
    return ev;
  }
  if (tok[0] == "finish") {
    ev.kind = JournalEvent::Kind::kFinish;
    if (tok.size() != 2 || !ParseI64(tok[1], &ev.id)) return Malformed(payload);
    return ev;
  }
  if (tok[0] == "deadline") {
    ev.kind = JournalEvent::Kind::kDeadline;
    if (tok.size() != 3 || !ParseI64(tok[1], &ev.id) ||
        !ParseI64(tok[2], &ev.tick)) {
      return Malformed(payload);
    }
    return ev;
  }
  if (tok[0] == "tick") {
    ev.kind = JournalEvent::Kind::kTick;
    if (tok.size() != 2 || !ParseI64(tok[1], &ev.tick)) {
      return Malformed(payload);
    }
    return ev;
  }
  return Malformed(payload);
}

}  // namespace lhmm::srv
