#ifndef LHMM_SRV_SNAPSHOT_H_
#define LHMM_SRV_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/env.h"
#include "matchers/stream_engine.h"

namespace lhmm::srv {

/// One drained session as persisted by MatchServer::Drain: the server-side
/// identity plus everything StreamEngine needs to resume matching
/// byte-identically (anchor state, uncommitted window, committed prefix — see
/// matchers::SessionCheckpoint).
struct SessionRecord {
  int64_t server_id = 0;
  int tier = 0;  ///< Degrade tier the session was opened at.
  /// Absolute logical-clock deadline armed on the session (v2+). 0 = none;
  /// -1 = unknown (a v1 snapshot predates this field) — restore re-arms the
  /// server's default deadline instead, the pre-v2 behavior.
  int64_t deadline_tick = -1;
  matchers::SessionCheckpoint checkpoint;
};

/// Everything a restarted MatchServer needs to pick up where a drained (or
/// checkpointed-then-killed) one stopped.
struct ServerSnapshot {
  int64_t clock = 0;           ///< The server's logical clock at drain time.
  int tier = 0;                ///< Active degrade tier at drain time.
  int64_t total_sessions = 0;  ///< Size of the session-id space (ids are dense).
  /// Highest journal record index whose effects this snapshot already
  /// contains (v2+). Crash recovery replays only records after it; journal
  /// segments at or below it are safe to compact away. 0 = snapshot covers
  /// no journal (a v1 drain snapshot, or journaling disabled).
  int64_t journal_pos = 0;
  std::vector<SessionRecord> sessions;  ///< Live sessions, in id order.
};

/// The snapshot format version SaveServerSnapshot writes. v2 added
/// journal_pos and the per-session deadline_tick; LoadServerSnapshot still
/// reads v1 files (journal_pos = 0, deadline_tick = -1) and rejects unknown
/// future versions with a typed error.
inline constexpr int kServerSnapshotVersion = 2;

/// Persists `snapshot` to the versioned line-oriented snapshot format
/// (io::SnapshotWriter; atomic durable write). Doubles round-trip exactly.
core::Status SaveServerSnapshot(const ServerSnapshot& snapshot,
                                const std::string& path,
                                io::Env* env = nullptr);

/// Loads a snapshot written by SaveServerSnapshot. Corrupt or truncated input
/// fails with the file and 1-based line of the problem (io/ error contract).
core::Result<ServerSnapshot> LoadServerSnapshot(const std::string& path);

}  // namespace lhmm::srv

#endif  // LHMM_SRV_SNAPSHOT_H_
