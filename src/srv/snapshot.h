#ifndef LHMM_SRV_SNAPSHOT_H_
#define LHMM_SRV_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "matchers/stream_engine.h"

namespace lhmm::srv {

/// One drained session as persisted by MatchServer::Drain: the server-side
/// identity plus everything StreamEngine needs to resume matching
/// byte-identically (anchor state, uncommitted window, committed prefix — see
/// matchers::SessionCheckpoint).
struct SessionRecord {
  int64_t server_id = 0;
  int tier = 0;  ///< Degrade tier the session was opened at.
  matchers::SessionCheckpoint checkpoint;
};

/// Everything a restarted MatchServer needs to pick up where a drained one
/// stopped.
struct ServerSnapshot {
  int64_t clock = 0;           ///< The server's logical clock at drain time.
  int tier = 0;                ///< Active degrade tier at drain time.
  int64_t total_sessions = 0;  ///< Size of the session-id space (ids are dense).
  std::vector<SessionRecord> sessions;  ///< Live sessions, in id order.
};

/// Persists `snapshot` to the versioned line-oriented snapshot format
/// (io::SnapshotWriter; atomic write). Doubles round-trip exactly.
core::Status SaveServerSnapshot(const ServerSnapshot& snapshot,
                                const std::string& path);

/// Loads a snapshot written by SaveServerSnapshot. Corrupt or truncated input
/// fails with the file and 1-based line of the problem (io/ error contract).
core::Result<ServerSnapshot> LoadServerSnapshot(const std::string& path);

}  // namespace lhmm::srv

#endif  // LHMM_SRV_SNAPSHOT_H_
