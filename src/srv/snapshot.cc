#include "srv/snapshot.h"

#include <utility>

#include "io/snapshot_io.h"

namespace lhmm::srv {

namespace {

constexpr char kKind[] = "match-server";

void WritePoint(io::SnapshotWriter* w, const traj::TrajPoint& p) {
  w->AddDouble(p.pos.x).AddDouble(p.pos.y).AddDouble(p.t).AddInt(p.tower);
}

core::Status ReadPoint(io::SnapshotReader* r, traj::TrajPoint* p) {
  auto x = r->TakeDouble();
  if (!x.ok()) return x.status();
  auto y = r->TakeDouble();
  if (!y.ok()) return y.status();
  auto t = r->TakeDouble();
  if (!t.ok()) return t.status();
  auto tower = r->TakeInt();
  if (!tower.ok()) return tower.status();
  p->pos.x = *x;
  p->pos.y = *y;
  p->t = *t;
  p->tower = static_cast<traj::TowerId>(*tower);
  return core::Status::Ok();
}

/// Reads the line `key <int>` that must come next in the record.
core::Result<int64_t> ReadKeyedInt(io::SnapshotReader* r, const char* key) {
  if (!r->NextLine() || r->key() != key) {
    return r->Error(std::string("expected '") + key + "' line");
  }
  auto v = r->TakeInt();
  if (!v.ok()) return v.status();
  LHMM_RETURN_IF_ERROR(r->ExpectLineEnd());
  return *v;
}

core::Status ReadSessionRecord(io::SnapshotReader* r, SessionRecord* rec) {
  // Current line: session <server_id> <tier> <seen_point> <last_time>
  // and, from v2 on, a trailing <deadline_tick>.
  auto id = r->TakeInt();
  if (!id.ok()) return id.status();
  auto tier = r->TakeInt();
  if (!tier.ok()) return tier.status();
  auto seen = r->TakeInt();
  if (!seen.ok()) return seen.status();
  auto last_time = r->TakeDouble();
  if (!last_time.ok()) return last_time.status();
  if (r->version() >= 2) {
    auto deadline = r->TakeInt();
    if (!deadline.ok()) return deadline.status();
    if (*deadline < 0) return r->Error("negative deadline_tick");
    rec->deadline_tick = *deadline;
  }
  LHMM_RETURN_IF_ERROR(r->ExpectLineEnd());
  rec->server_id = *id;
  rec->tier = static_cast<int>(*tier);
  rec->checkpoint.seen_point = *seen != 0;
  rec->checkpoint.last_time = *last_time;

  matchers::SessionSnapshot& ss = rec->checkpoint.session;
  hmm::OnlineCheckpoint& oc = ss.online;

  // stats <latency_points_sum> <pushed> <consumed> <breaks>
  if (!r->NextLine() || r->key() != "stats") {
    return r->Error("expected 'stats' line");
  }
  auto lat = r->TakeInt();
  if (!lat.ok()) return lat.status();
  auto pushed = r->TakeInt();
  if (!pushed.ok()) return pushed.status();
  auto consumed = r->TakeInt();
  if (!consumed.ok()) return consumed.status();
  auto breaks = r->TakeInt();
  if (!breaks.ok()) return breaks.status();
  LHMM_RETURN_IF_ERROR(r->ExpectLineEnd());
  ss.latency_points_sum = *lat;
  oc.pushed = *pushed;
  oc.consumed = *consumed;
  oc.breaks = *breaks;

  // anchor 0 | anchor 1 <segment> <dist> <cx> <cy> <obs> <shortcut> <point>
  if (!r->NextLine() || r->key() != "anchor") {
    return r->Error("expected 'anchor' line");
  }
  auto has_anchor = r->TakeInt();
  if (!has_anchor.ok()) return has_anchor.status();
  oc.has_anchor = *has_anchor != 0;
  if (oc.has_anchor) {
    auto seg = r->TakeInt();
    if (!seg.ok()) return seg.status();
    auto dist = r->TakeDouble();
    if (!dist.ok()) return dist.status();
    auto cx = r->TakeDouble();
    if (!cx.ok()) return cx.status();
    auto cy = r->TakeDouble();
    if (!cy.ok()) return cy.status();
    auto obs = r->TakeDouble();
    if (!obs.ok()) return obs.status();
    auto shortcut = r->TakeInt();
    if (!shortcut.ok()) return shortcut.status();
    oc.anchor.segment = static_cast<network::SegmentId>(*seg);
    oc.anchor.dist = *dist;
    oc.anchor.closest.x = *cx;
    oc.anchor.closest.y = *cy;
    oc.anchor.observation = *obs;
    oc.anchor.from_shortcut = *shortcut != 0;
    LHMM_RETURN_IF_ERROR(ReadPoint(r, &oc.anchor_point));
  }
  LHMM_RETURN_IF_ERROR(r->ExpectLineEnd());

  // window <n> followed by n "point ..." lines.
  core::Result<int64_t> window_n = ReadKeyedInt(r, "window");
  if (!window_n.ok()) return window_n.status();
  if (*window_n < 0) return r->Error("negative window size");
  oc.window.resize(static_cast<size_t>(*window_n));
  for (traj::TrajPoint& p : oc.window) {
    if (!r->NextLine() || r->key() != "point") {
      return r->Error("expected 'point' line");
    }
    LHMM_RETURN_IF_ERROR(ReadPoint(r, &p));
    LHMM_RETURN_IF_ERROR(r->ExpectLineEnd());
  }

  // committed <n> <seg> <seg> ...
  if (!r->NextLine() || r->key() != "committed") {
    return r->Error("expected 'committed' line");
  }
  auto committed_n = r->TakeInt();
  if (!committed_n.ok()) return committed_n.status();
  if (*committed_n < 0) return r->Error("negative committed size");
  oc.committed.resize(static_cast<size_t>(*committed_n));
  for (network::SegmentId& sid : oc.committed) {
    auto v = r->TakeInt();
    if (!v.ok()) return v.status();
    sid = static_cast<network::SegmentId>(*v);
  }
  return r->ExpectLineEnd();
}

}  // namespace

core::Status SaveServerSnapshot(const ServerSnapshot& snapshot,
                                const std::string& path, io::Env* env) {
  io::SnapshotWriter w(kKind, kServerSnapshotVersion);
  w.BeginLine("clock").AddInt(snapshot.clock);
  w.EndLine();
  w.BeginLine("tier").AddInt(snapshot.tier);
  w.EndLine();
  w.BeginLine("total_sessions").AddInt(snapshot.total_sessions);
  w.EndLine();
  w.BeginLine("journal_pos").AddInt(snapshot.journal_pos);
  w.EndLine();
  w.BeginLine("num_live").AddInt(static_cast<int64_t>(snapshot.sessions.size()));
  w.EndLine();
  for (const SessionRecord& rec : snapshot.sessions) {
    const matchers::SessionSnapshot& ss = rec.checkpoint.session;
    const hmm::OnlineCheckpoint& oc = ss.online;
    w.BeginLine("session")
        .AddInt(rec.server_id)
        .AddInt(rec.tier)
        .AddInt(rec.checkpoint.seen_point ? 1 : 0)
        .AddDouble(rec.checkpoint.last_time)
        .AddInt(rec.deadline_tick < 0 ? 0 : rec.deadline_tick);
    w.EndLine();
    w.BeginLine("stats")
        .AddInt(ss.latency_points_sum)
        .AddInt(oc.pushed)
        .AddInt(oc.consumed)
        .AddInt(oc.breaks);
    w.EndLine();
    w.BeginLine("anchor").AddInt(oc.has_anchor ? 1 : 0);
    if (oc.has_anchor) {
      w.AddInt(oc.anchor.segment)
          .AddDouble(oc.anchor.dist)
          .AddDouble(oc.anchor.closest.x)
          .AddDouble(oc.anchor.closest.y)
          .AddDouble(oc.anchor.observation)
          .AddInt(oc.anchor.from_shortcut ? 1 : 0);
      WritePoint(&w, oc.anchor_point);
    }
    w.EndLine();
    w.BeginLine("window").AddInt(static_cast<int64_t>(oc.window.size()));
    w.EndLine();
    for (const traj::TrajPoint& p : oc.window) {
      w.BeginLine("point");
      WritePoint(&w, p);
      w.EndLine();
    }
    w.BeginLine("committed").AddInt(static_cast<int64_t>(oc.committed.size()));
    for (const network::SegmentId sid : oc.committed) w.AddInt(sid);
    w.EndLine();
  }
  return w.WriteFile(path, /*durable=*/true, env);
}

core::Result<ServerSnapshot> LoadServerSnapshot(const std::string& path) {
  core::Result<io::SnapshotReader> reader =
      io::SnapshotReader::Open(path, kKind, kServerSnapshotVersion);
  if (!reader.ok()) return reader.status();
  io::SnapshotReader& r = *reader;

  ServerSnapshot snap;
  core::Result<int64_t> clock = ReadKeyedInt(&r, "clock");
  if (!clock.ok()) return clock.status();
  snap.clock = *clock;
  core::Result<int64_t> tier = ReadKeyedInt(&r, "tier");
  if (!tier.ok()) return tier.status();
  snap.tier = static_cast<int>(*tier);
  core::Result<int64_t> total = ReadKeyedInt(&r, "total_sessions");
  if (!total.ok()) return total.status();
  if (*total < 0) return r.Error("negative total_sessions");
  snap.total_sessions = *total;
  if (r.version() >= 2) {
    // v1 (pre-journal drain snapshots) has no journal_pos; it stays 0.
    core::Result<int64_t> journal_pos = ReadKeyedInt(&r, "journal_pos");
    if (!journal_pos.ok()) return journal_pos.status();
    if (*journal_pos < 0) return r.Error("negative journal_pos");
    snap.journal_pos = *journal_pos;
  }
  core::Result<int64_t> num_live = ReadKeyedInt(&r, "num_live");
  if (!num_live.ok()) return num_live.status();
  if (*num_live < 0) return r.Error("negative num_live");

  snap.sessions.reserve(static_cast<size_t>(*num_live));
  for (int64_t i = 0; i < *num_live; ++i) {
    if (!r.NextLine() || r.key() != "session") {
      return r.Error("expected 'session' line (" + std::to_string(i) + " of " +
                     std::to_string(*num_live) + " read)");
    }
    SessionRecord rec;
    LHMM_RETURN_IF_ERROR(ReadSessionRecord(&r, &rec));
    if (rec.server_id < 0 || rec.server_id >= snap.total_sessions) {
      return r.Error("session id " + std::to_string(rec.server_id) +
                     " outside the id space");
    }
    snap.sessions.push_back(std::move(rec));
  }
  if (r.NextLine()) {
    return r.Error("trailing content after the last session record");
  }
  return snap;
}

}  // namespace lhmm::srv
