#ifndef LHMM_SRV_FRAME_H_
#define LHMM_SRV_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace lhmm::srv {

/// Wire framing for the lhmm_serve TCP transport. One frame carries one
/// protocol line (request or response), without its trailing newline:
///
///   byte 0      magic 'L'
///   byte 1      version 0x01
///   bytes 2..5  payload length, uint32 little-endian
///   bytes 6..   payload (opaque bytes; the serve protocol puts a verb line
///               here, but the codec itself never inspects them)
///
/// The codec is incremental and byte-boundary agnostic: FrameDecoder::Feed
/// accepts arbitrary chunks (a single byte, half a header, three frames plus
/// a partial fourth) and emits exactly the payload sequence that was encoded.
/// Every malformed input is a typed error, never a silent resync: a bad magic
/// or version byte and an over-limit length each poison the decoder with
/// kInvalidArgument, because a byte stream is unrecoverable once framing is
/// lost — the owning connection must be dropped.
inline constexpr char kFrameMagic = 'L';
inline constexpr char kFrameVersion = 0x01;
inline constexpr size_t kFrameHeaderBytes = 6;
/// Default payload-size limit; a length field above the decoder's limit is
/// rejected before any payload is buffered, so a garbage header cannot make
/// the decoder allocate unbounded memory.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Appends the framed encoding of `payload` to `*out`.
void AppendFrame(std::string_view payload, std::string* out);

/// The framed encoding of `payload` as a fresh string.
std::string EncodeFrame(std::string_view payload);

class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Consumes `n` bytes and appends every payload completed by them to
  /// `*out`. Returns kInvalidArgument (and poisons the decoder) on a bad
  /// magic byte, an unsupported version, or a length above the limit; once
  /// poisoned every further Feed returns the same error.
  core::Status Feed(const void* data, size_t n, std::vector<std::string>* out);

  /// End-of-stream check: OK at a frame boundary, kInvalidArgument when the
  /// stream ended inside a header or payload (a truncated frame).
  core::Status End() const;

  /// True when the decoder sits exactly at a frame boundary (no partial
  /// header or payload buffered).
  bool idle() const { return buf_.empty() && !poisoned(); }
  bool poisoned() const { return !error_.ok(); }
  /// Bytes of the in-progress frame buffered so far.
  size_t buffered() const { return buf_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  core::Status error_;
};

/// Blocking client-side helpers over a connected stream socket. Both retry
/// EINTR and handle partial transfers; WriteFrame sends with MSG_NOSIGNAL so
/// a dead peer is a typed kUnavailable, not a SIGPIPE.
core::Status WriteFrame(int fd, std::string_view payload);

/// Reads one full frame. Typed failures: kUnavailable when the peer closed
/// cleanly at a frame boundary, kIoError on a read error or a connection cut
/// mid-frame, kInvalidArgument on malformed framing.
core::Result<std::string> ReadFrame(
    int fd, size_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace lhmm::srv

#endif  // LHMM_SRV_FRAME_H_
