#include "srv/frame.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/strings.h"

namespace lhmm::srv {

void AppendFrame(std::string_view payload, std::string* out) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out->push_back(kFrameMagic);
  out->push_back(kFrameVersion);
  out->push_back(static_cast<char>(len & 0xff));
  out->push_back(static_cast<char>((len >> 8) & 0xff));
  out->push_back(static_cast<char>((len >> 16) & 0xff));
  out->push_back(static_cast<char>((len >> 24) & 0xff));
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &out);
  return out;
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

core::Status FrameDecoder::Feed(const void* data, size_t n,
                                std::vector<std::string>* out) {
  if (!error_.ok()) return error_;
  buf_.append(static_cast<const char*>(data), n);
  // Validate header bytes as soon as they arrive — a garbage stream is
  // rejected on its first byte, not after a length's worth of buffering.
  for (;;) {
    if (!buf_.empty() && buf_[0] != kFrameMagic) {
      error_ = core::Status::InvalidArgument(core::StrFormat(
          "bad frame magic 0x%02x (want 0x%02x)",
          static_cast<unsigned char>(buf_[0]),
          static_cast<unsigned char>(kFrameMagic)));
      return error_;
    }
    if (buf_.size() >= 2 && buf_[1] != kFrameVersion) {
      error_ = core::Status::InvalidArgument(core::StrFormat(
          "unsupported frame version 0x%02x (want 0x%02x)",
          static_cast<unsigned char>(buf_[1]),
          static_cast<unsigned char>(kFrameVersion)));
      return error_;
    }
    if (buf_.size() < kFrameHeaderBytes) return core::Status::Ok();
    const uint32_t len =
        static_cast<uint32_t>(static_cast<unsigned char>(buf_[2])) |
        static_cast<uint32_t>(static_cast<unsigned char>(buf_[3])) << 8 |
        static_cast<uint32_t>(static_cast<unsigned char>(buf_[4])) << 16 |
        static_cast<uint32_t>(static_cast<unsigned char>(buf_[5])) << 24;
    if (len > max_frame_bytes_) {
      error_ = core::Status::InvalidArgument(core::StrFormat(
          "frame length %u exceeds limit %zu", len, max_frame_bytes_));
      return error_;
    }
    if (buf_.size() < kFrameHeaderBytes + len) return core::Status::Ok();
    out->emplace_back(buf_, kFrameHeaderBytes, len);
    buf_.erase(0, kFrameHeaderBytes + len);
  }
}

core::Status FrameDecoder::End() const {
  if (!error_.ok()) return error_;
  if (buf_.empty()) return core::Status::Ok();
  return core::Status::InvalidArgument(core::StrFormat(
      "truncated frame: stream ended with %zu byte(s) of a partial %s",
      buf_.size(), buf_.size() < kFrameHeaderBytes ? "header" : "payload"));
}

core::Status WriteFrame(int fd, std::string_view payload) {
  const std::string frame = EncodeFrame(payload);
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n =
        send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return core::Status::Unavailable("connection closed by peer");
      }
      return core::Status::IoError(
          core::StrFormat("send: %s", strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return core::Status::Ok();
}

namespace {

/// Reads exactly `n` bytes. Returns the count actually read (short only at
/// EOF) or a negative errno-style failure surfaced as a Status by callers.
core::Result<size_t> ReadFull(int fd, char* out, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = read(fd, out + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      return core::Status::IoError(
          core::StrFormat("read: %s", strerror(errno)));
    }
    if (r == 0) break;  // EOF.
    off += static_cast<size_t>(r);
  }
  return off;
}

}  // namespace

core::Result<std::string> ReadFrame(int fd, size_t max_frame_bytes) {
  char header[kFrameHeaderBytes];
  core::Result<size_t> got = ReadFull(fd, header, sizeof(header));
  if (!got.ok()) return got.status();
  if (*got == 0) return core::Status::Unavailable("connection closed");
  if (*got < sizeof(header)) {
    return core::Status::IoError(core::StrFormat(
        "connection cut mid-frame (%zu of %zu header bytes)", *got,
        sizeof(header)));
  }
  // Run the header through the shared decoder so client- and server-side
  // validation agree byte for byte.
  FrameDecoder decoder(max_frame_bytes);
  std::vector<std::string> frames;
  LHMM_RETURN_IF_ERROR(decoder.Feed(header, sizeof(header), &frames));
  if (!frames.empty()) return std::move(frames[0]);  // Zero-length payload.
  const uint32_t len =
      static_cast<uint32_t>(static_cast<unsigned char>(header[2])) |
      static_cast<uint32_t>(static_cast<unsigned char>(header[3])) << 8 |
      static_cast<uint32_t>(static_cast<unsigned char>(header[4])) << 16 |
      static_cast<uint32_t>(static_cast<unsigned char>(header[5])) << 24;
  std::string payload(len, '\0');
  got = ReadFull(fd, payload.data(), payload.size());
  if (!got.ok()) return got.status();
  if (*got < payload.size()) {
    return core::Status::IoError(core::StrFormat(
        "connection cut mid-frame (%zu of %zu payload bytes)", *got,
        payload.size()));
  }
  return payload;
}

}  // namespace lhmm::srv
