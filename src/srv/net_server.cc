#include "srv/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/strings.h"

namespace lhmm::srv {

namespace {

std::string ErrLine(const core::Status& s) {
  return "err " + std::string(core::StatusCodeName(s.code())) + " " +
         s.message();
}

const char* StateName(matchers::SessionState s) {
  switch (s) {
    case matchers::SessionState::kLive: return "live";
    case matchers::SessionState::kFinished: return "finished";
    case matchers::SessionState::kEvicted: return "evicted";
    case matchers::SessionState::kExpired: return "expired";
    case matchers::SessionState::kPoisoned: return "poisoned";
  }
  return "unknown";
}

/// Poll rounds the listener sits out after an unshed-able EMFILE. One round
/// is one poll_interval_ms timeout, so the pause is short — just long enough
/// that a starved server waits in poll() instead of spinning on a
/// permanently-readable listen fd.
constexpr int kAcceptPauseRounds = 5;

core::Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return core::Status::IoError(
        core::StrFormat("fcntl(O_NONBLOCK): %s", strerror(errno)));
  }
  return core::Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// CommandProcessor
// ---------------------------------------------------------------------------

CommandProcessor::CommandProcessor(MatchServer* server,
                                   const CommandOptions& options)
    : server_(server),
      options_(options),
      start_(std::chrono::steady_clock::now()) {}

bool CommandProcessor::Process(const std::string& line, std::string* response,
                               bool* quit) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return false;
  if (cmd == "quit") {
    *quit = true;
    return false;
  }
  if (cmd == "open") {
    core::Result<int64_t> id = server_->OpenSession();
    if (!id.ok()) {
      *response = ErrLine(id.status());
    } else {
      *response = core::StrFormat(
          "ok open %lld tier=%s", static_cast<long long>(*id),
          server_->tier_name(server_->session_tier(*id)).c_str());
    }
    return true;
  }
  if (cmd == "push") {
    int64_t id;
    traj::TrajPoint p;
    long tower;
    if (!(in >> id >> p.pos.x >> p.pos.y >> p.t >> tower)) {
      *response = ErrLine(
          core::Status::InvalidArgument("usage: push <id> <x> <y> <t> <tower>"));
      return true;
    }
    p.tower = static_cast<traj::TowerId>(tower);
    const core::Status st = server_->Push(id, p);
    *response = st.ok() ? core::StrFormat("ok push %lld",
                                          static_cast<long long>(id))
                        : ErrLine(st);
    return true;
  }
  if (cmd == "finish") {
    int64_t id;
    if (!(in >> id)) {
      *response = ErrLine(core::Status::InvalidArgument("usage: finish <id>"));
      return true;
    }
    const core::Status st = server_->Finish(id);
    *response = st.ok() ? core::StrFormat("ok finish %lld",
                                          static_cast<long long>(id))
                        : ErrLine(st);
    return true;
  }
  if (cmd == "deadline") {
    int64_t id, tick;
    if (!(in >> id >> tick)) {
      *response =
          ErrLine(core::Status::InvalidArgument("usage: deadline <id> <tick>"));
      return true;
    }
    const core::Status st = server_->SetDeadline(id, tick);
    *response = st.ok() ? core::StrFormat("ok deadline %lld",
                                          static_cast<long long>(id))
                        : ErrLine(st);
    return true;
  }
  if (cmd == "tick") {
    int64_t now;
    if (!(in >> now)) {
      *response = ErrLine(core::Status::InvalidArgument("usage: tick <now>"));
      return true;
    }
    server_->Tick(now);
    if (server_->durable() && options_.checkpoint_every > 0 &&
        server_->clock() % options_.checkpoint_every == 0) {
      const core::Status st = server_->Checkpoint();
      if (!st.ok()) {
        fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      }
    }
    *response = core::StrFormat("ok tick %lld tier=%s",
                                static_cast<long long>(server_->clock()),
                                server_->active_tier_name().c_str());
    return true;
  }
  if (cmd == "await") {
    server_->Barrier();
    *response = "ok await";
    return true;
  }
  if (cmd == "committed") {
    int64_t id;
    if (!(in >> id)) {
      *response =
          ErrLine(core::Status::InvalidArgument("usage: committed <id>"));
      return true;
    }
    if (id < 0 || id >= server_->num_sessions()) {
      *response =
          ErrLine(core::Status::NotFound("no session " + std::to_string(id)));
      return true;
    }
    const std::vector<network::SegmentId>& path = server_->Committed(id);
    *response = core::StrFormat("ok committed %lld %zu",
                                static_cast<long long>(id), path.size());
    for (const network::SegmentId s : path) {
      response->append(core::StrFormat(" %d", s));
    }
    return true;
  }
  if (cmd == "status") {
    int64_t id;
    if (!(in >> id)) {
      // No id: server-level status, durability included. The crash harness
      // and operators read the journal/snapshot fields from here.
      const DurabilityStatus d = server_->durability_status();
      // store_* reports the data plane: which store generation this worker
      // maps (mapped mode) or -1 with mode=owned when every asset is a
      // private heap copy. lhmm_fleet reads these to surface generation skew.
      const store::StoreStatus ss =
          options_.store ? options_.store->Status() : store::StoreStatus{-1, -1, 0};
      *response = core::StrFormat(
          "ok status clock=%lld tier=%s durable=%d"
          " journal_segments=%lld journal_bytes=%lld"
          " last_durable_index=%lld last_durable_tick=%lld"
          " snapshot_gen=%d journal_errors=%lld"
          " store_gen=%lld store_bytes=%lld store_mode=%s",
          static_cast<long long>(server_->clock()),
          server_->active_tier_name().c_str(), d.enabled ? 1 : 0,
          static_cast<long long>(d.journal_segments),
          static_cast<long long>(d.journal_bytes),
          static_cast<long long>(d.last_durable_index),
          static_cast<long long>(d.last_durable_tick), d.snapshot_generation,
          static_cast<long long>(d.journal_errors),
          static_cast<long long>(ss.generation),
          static_cast<long long>(ss.bytes),
          options_.store ? "mapped" : "owned");
      // Resource-exhaustion state rides at the end of the line (existing
      // parsers key on field names, so appending is compatible): degraded=1
      // means journaling is suspended and pushes ack DataLoss under
      // kEveryRecord until disk space frees and the exit checkpoint lands.
      response->append(core::StrFormat(
          " degraded=%d degraded_entered=%lld degraded_exited=%lld"
          " events_not_journaled=%lld journal_sealed=%lld journal_wedged=%d"
          " disk_free=%lld",
          d.degraded_nondurable ? 1 : 0,
          static_cast<long long>(d.degraded_entered),
          static_cast<long long>(d.degraded_exited),
          static_cast<long long>(d.events_not_journaled),
          static_cast<long long>(d.journal_seal_events),
          d.journal_wedged ? 1 : 0,
          static_cast<long long>(d.disk_free_bytes)));
      return true;
    }
    if (id < 0 || id >= server_->num_sessions()) {
      *response =
          ErrLine(core::Status::NotFound("no session " + std::to_string(id)));
      return true;
    }
    // pushed= lets a client resume a session after a crash: recovery rolls
    // back to the durable prefix, and this is where it ends.
    const core::Status st = server_->SessionStatus(id);
    *response = core::StrFormat(
        "ok status %lld %s %s pushed=%lld", static_cast<long long>(id),
        StateName(server_->state(id)), core::StatusCodeName(st.code()),
        static_cast<long long>(server_->Stats(id).points_pushed));
    return true;
  }
  if (cmd == "health") {
    // Liveness probe for supervisors: tier (where on the degrade ladder the
    // server is), logical clock, and durability generation. Everything comes
    // from the shared MatchServer, so stdin and socket transports answer
    // byte-identically — srv::Supervisor keys on the "ok health " prefix.
    const DurabilityStatus d = server_->durability_status();
    *response = core::StrFormat(
        "ok health tier=%s clock=%lld durable=%d gen=%d live=%lld",
        server_->active_tier_name().c_str(),
        static_cast<long long>(server_->clock()), d.enabled ? 1 : 0,
        d.snapshot_generation,
        static_cast<long long>(server_->metrics().live_sessions));
    // Only mapped-mode workers carry the field; the response is otherwise
    // unchanged so existing probes (and their exact-match tests) still hold.
    if (options_.store != nullptr) {
      response->append(core::StrFormat(
          " store=%lld",
          static_cast<long long>(options_.store->Status().generation)));
    }
    return true;
  }
  if (cmd == "pid") {
    // Lets supervisors and scripts address the worker process behind either
    // transport; uptime is integer seconds since this processor was built.
    const long long uptime =
        std::chrono::duration_cast<std::chrono::seconds>(
            std::chrono::steady_clock::now() - start_)
            .count();
    *response = core::StrFormat("ok pid %d uptime=%lld",
                                static_cast<int>(getpid()), uptime);
    return true;
  }
  if (cmd == "stats") {
    const ServerMetrics m = server_->metrics();
    *response = core::StrFormat(
        "ok stats clock=%lld tier=%s live=%lld queue=%lld opens=%lld/%lld"
        " pushes=%lld/%lld expired=%lld quarantined=%lld evicted=%lld"
        " downgrades=%lld upgrades=%lld",
        static_cast<long long>(m.clock), server_->active_tier_name().c_str(),
        static_cast<long long>(m.live_sessions),
        static_cast<long long>(m.queue_depth),
        static_cast<long long>(m.opens_admitted),
        static_cast<long long>(m.opens_shed),
        static_cast<long long>(m.pushes_admitted),
        static_cast<long long>(m.pushes_shed),
        static_cast<long long>(m.expired_sessions),
        static_cast<long long>(m.quarantined_sessions),
        static_cast<long long>(m.evicted_sessions),
        static_cast<long long>(m.downgrades),
        static_cast<long long>(m.upgrades));
    return true;
  }
  if (cmd == "checkpoint") {
    const core::Status st = server_->Checkpoint();
    *response = st.ok()
                    ? core::StrFormat(
                          "ok checkpoint gen=%d",
                          server_->durability_status().snapshot_generation)
                    : ErrLine(st);
    return true;
  }
  if (cmd == "swap") {
    // Hot model swap: flip to store generation <gen>. The manager validates
    // the candidate fully (header, CRCs, fingerprint against the live
    // network) before anything changes, so a reject leaves the serving
    // generation untouched — the typed error names the file and byte offset.
    long long gen = -1;
    if (!(in >> gen)) {
      *response = ErrLine(core::Status::InvalidArgument("usage: swap <gen>"));
      return true;
    }
    if (options_.store == nullptr) {
      *response = ErrLine(core::Status::FailedPrecondition(
          "no store attached (start with --store)"));
      return true;
    }
    const core::Result<store::StoreStatus> r = options_.store->Swap(gen);
    *response = r.ok()
                    ? core::StrFormat(
                          "ok swap gen=%lld prev=%lld bytes=%lld",
                          static_cast<long long>(r->generation),
                          static_cast<long long>(r->previous_generation),
                          static_cast<long long>(r->bytes))
                    : ErrLine(r.status());
    return true;
  }
  if (cmd == "rollback") {
    if (options_.store == nullptr) {
      *response = ErrLine(core::Status::FailedPrecondition(
          "no store attached (start with --store)"));
      return true;
    }
    const core::Result<store::StoreStatus> r = options_.store->Rollback();
    *response = r.ok()
                    ? core::StrFormat(
                          "ok rollback gen=%lld prev=%lld bytes=%lld",
                          static_cast<long long>(r->generation),
                          static_cast<long long>(r->previous_generation),
                          static_cast<long long>(r->bytes))
                    : ErrLine(r.status());
    return true;
  }
  if (cmd == "drain") {
    std::string path;
    if (!(in >> path)) {
      *response = ErrLine(core::Status::InvalidArgument("usage: drain <path>"));
      return true;
    }
    const core::Status st = server_->Drain(path);
    *response = st.ok() ? "ok drain " + path : ErrLine(st);
    return true;
  }
  *response =
      ErrLine(core::Status::InvalidArgument("unknown command '" + cmd + "'"));
  return true;
}

// ---------------------------------------------------------------------------
// NetServer
// ---------------------------------------------------------------------------

NetServer::NetServer(MatchServer* server, const CommandOptions& cmd_options,
                     const NetServerConfig& config)
    : server_(server),
      processor_(server, cmd_options),
      config_(config),
      env_(config.env != nullptr ? config.env : io::Env::Default()) {}

NetServer::~NetServer() {
  for (auto& c : conns_) {
    if (c->fd >= 0) close(c->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (reserve_fd_ >= 0) close(reserve_fd_);
}

core::Status NetServer::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return core::Status::IoError(
        core::StrFormat("socket: %s", strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (config_.reuse_port) {
#ifdef SO_REUSEPORT
    if (setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
        0) {
      return core::Status::IoError(
          core::StrFormat("setsockopt(SO_REUSEPORT): %s", strerror(errno)));
    }
#else
    return core::Status::Unimplemented("SO_REUSEPORT not available");
#endif
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    return core::Status::InvalidArgument(
        "bad listen host '" + config_.host + "' (numeric IPv4 expected)");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return core::Status::IoError(core::StrFormat(
        "bind %s:%d: %s", config_.host.c_str(), config_.port,
        strerror(errno)));
  }
  if (listen(listen_fd_, config_.backlog) < 0) {
    return core::Status::IoError(
        core::StrFormat("listen: %s", strerror(errno)));
  }
  LHMM_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  sockaddr_in bound = {};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return core::Status::IoError(
        core::StrFormat("getsockname: %s", strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);
  // Arm the reserve descriptor for the EMFILE shed path (see Accept). Best
  // effort: if even this open fails the server still runs, it just falls
  // back to accept-pausing under fd exhaustion.
  if (reserve_fd_ < 0) reserve_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
  return core::Status::Ok();
}

void NetServer::Accept() {
  for (;;) {
    const core::Result<int> accepted = env_->AcceptFd(listen_fd_);
    if (accepted.ok() && *accepted < 0) return;  // Backlog drained (EAGAIN).
    if (!accepted.ok()) {
      if (accepted.status().code() != core::StatusCode::kResourceExhausted) {
        // Transient per-connection failure (ECONNABORTED, ...): the next
        // poll round retries; nothing to clean up.
        ++metrics_.accept_failures;
        return;
      }
      // EMFILE/ENFILE. The pending connection cannot be accepted, but the
      // listen fd stays readable, so simply returning would make poll() a
      // busy loop. Surrender the reserve fd to free one descriptor slot,
      // accept the connection, close it immediately (the peer gets a clean
      // RST/EOF instead of hanging in the backlog until timeout), then
      // re-arm the reserve.
      if (reserve_fd_ >= 0) {
        close(reserve_fd_);
        reserve_fd_ = -1;
      }
      const core::Result<int> shed = env_->AcceptFd(listen_fd_);
      const bool shed_ok = shed.ok() && *shed >= 0;
      if (shed_ok) {
        close(*shed);
        ++metrics_.accepted_shed;
      } else {
        ++metrics_.accept_failures;
      }
      if (reserve_fd_ < 0) {
        reserve_fd_ = open("/dev/null", O_RDONLY | O_CLOEXEC);
      }
      if (shed_ok && reserve_fd_ >= 0) continue;  // Keep draining the storm.
      // Could not shed (another thread raced the freed slot) or could not
      // re-arm the reserve: stop polling the listener for a few rounds so
      // the loop blocks in poll() instead of spinning on POLLIN.
      accept_pause_rounds_ = kAcceptPauseRounds;
      return;
    }
    const int fd = *accepted;
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (config_.so_sndbuf > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &config_.so_sndbuf,
                 sizeof(config_.so_sndbuf));
    }
    auto conn = std::make_unique<Conn>(config_.max_frame_bytes);
    conn->fd = fd;
    conn->last_active = server_->clock();
    ++metrics_.accepted;
    conns_.push_back(std::move(conn));
  }
}

void NetServer::QueueResponse(Conn* conn, std::string_view response) {
  AppendFrame(response, &conn->out);
  ++metrics_.frames_out;
}

bool NetServer::HandleReadable(Conn* conn, bool* quit) {
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      ++metrics_.peer_disconnects;
      return false;
    }
    if (n == 0) {
      // Peer closed — possibly mid-frame; the partial dies with the conn and
      // nothing else is affected (sessions are server state, not conn state).
      ++metrics_.peer_disconnects;
      return false;
    }
    std::vector<std::string> lines;
    const core::Status decoded =
        conn->decoder.Feed(buf, static_cast<size_t>(n), &lines);
    for (const std::string& line : lines) {
      ++metrics_.frames_in;
      // Write-queue backpressure: a reader that stopped draining responses
      // gets typed kResourceExhausted rejects (same contract as admission)
      // instead of unbounded buffering; each reject costs one small frame
      // and no server work, so queue growth stays bounded by what the
      // client itself sends.
      if (conn->pending() > config_.max_write_queue_bytes) {
        ++metrics_.frames_shed;
        QueueResponse(conn,
                      "err ResourceExhausted connection write queue full");
        continue;
      }
      std::string response;
      bool q = false;
      if (processor_.Process(line, &response, &q)) {
        QueueResponse(conn, response);
      }
      conn->last_active = server_->clock();
      if (q) {
        // quit: stop dispatching (frames behind a quit are dropped by
        // design); the Run loop flushes every queued response and exits.
        *quit = true;
        return true;
      }
    }
    if (!decoded.ok()) {
      // Framing is unrecoverable: answer with the typed error, then close
      // once it is flushed.
      ++metrics_.codec_errors;
      QueueResponse(conn, ErrLine(decoded));
      conn->closing = true;
      return true;
    }
  }
}

bool NetServer::FlushWrites(Conn* conn) {
  while (conn->pending() > 0) {
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                           conn->pending(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      ++metrics_.peer_disconnects;
      return false;
    }
    conn->out_off += static_cast<size_t>(n);
  }
  if (conn->pending() == 0) {
    conn->out.clear();
    conn->out_off = 0;
    if (conn->closing) return false;  // Fully flushed: graceful close.
  } else if (conn->out_off > (1u << 20)) {
    conn->out.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  return true;
}

void NetServer::CloseConn(Conn* conn) {
  if (conn->fd < 0) return;
  close(conn->fd);
  conn->fd = -1;
  ++metrics_.closed;
}

core::Status NetServer::Run(const std::atomic<bool>& stop) {
  if (listen_fd_ < 0) {
    return core::Status::FailedPrecondition("Listen() must succeed before Run");
  }
  bool stopping = false;
  bool quit = false;
  std::vector<pollfd> pfds;
  for (;;) {
    if (!stopping && (quit || stop.load(std::memory_order_relaxed))) {
      // Graceful drain: stop accepting, flush every queued response, then
      // close. The caller runs the checkpoint/snapshot shutdown afterwards.
      stopping = true;
      for (auto& c : conns_) c->closing = true;
    }
    for (auto& c : conns_) {
      if (c->fd >= 0 && c->closing && c->pending() == 0) CloseConn(c.get());
    }
    conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                [](const std::unique_ptr<Conn>& c) {
                                  return c->fd < 0;
                                }),
                 conns_.end());
    if (stopping && conns_.empty()) break;

    ++metrics_.poll_wakeups;
    pfds.clear();
    // Under fd exhaustion the listener is dropped from the poll set for a
    // few rounds (Accept sets accept_pause_rounds_ when it cannot shed);
    // otherwise poll() would return POLLIN instantly forever and the loop
    // would busy-spin.
    const bool poll_listener = !stopping && accept_pause_rounds_ == 0;
    if (accept_pause_rounds_ > 0) --accept_pause_rounds_;
    const size_t base = poll_listener ? 1 : 0;
    if (poll_listener) pfds.push_back({listen_fd_, POLLIN, 0});
    const size_t n_conns = conns_.size();
    for (size_t k = 0; k < n_conns; ++k) {
      short events = 0;
      if (!conns_[k]->closing) events |= POLLIN;
      if (conns_[k]->pending() > 0) events |= POLLOUT;
      pfds.push_back({conns_[k]->fd, events, 0});
    }
    const int rc = poll(pfds.data(), pfds.size(), config_.poll_interval_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;  // A signal: re-check the stop flag.
      return core::Status::IoError(
          core::StrFormat("poll: %s", strerror(errno)));
    }
    for (size_t k = 0; k < n_conns; ++k) {
      Conn* c = conns_[k].get();
      if (c->fd < 0) continue;
      const short re = pfds[base + k].revents;
      bool alive = true;
      if (re & POLLNVAL) {
        alive = false;
      } else if (!c->closing && (re & (POLLIN | POLLHUP | POLLERR))) {
        alive = HandleReadable(c, &quit);
      } else if (c->closing && (re & (POLLHUP | POLLERR))) {
        ++metrics_.peer_disconnects;
        alive = false;
      }
      if (alive) alive = FlushWrites(c);
      if (!alive) CloseConn(c);
    }
    if (poll_listener && (pfds[0].revents & POLLIN)) Accept();
    // Half-open/idle reaping rides the server's logical clock: only `tick`
    // verbs advance it, so a fleet that stops ticking also stops reaping —
    // exactly the semantics of the engine's session idle TTL.
    if (config_.conn_idle_ttl > 0 && !stopping) {
      const int64_t now = server_->clock();
      for (auto& c : conns_) {
        if (c->fd >= 0 && !c->closing &&
            now - c->last_active >= config_.conn_idle_ttl) {
          ++metrics_.reaped_idle;
          CloseConn(c.get());
        }
      }
    }
  }
  close(listen_fd_);
  listen_fd_ = -1;
  return core::Status::Ok();
}

}  // namespace lhmm::srv
