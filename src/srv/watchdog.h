#ifndef LHMM_SRV_WATCHDOG_H_
#define LHMM_SRV_WATCHDOG_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lhmm::srv {

struct WatchdogConfig {
  /// Logical ticks a session may hold queued events without its processed
  /// counter moving before it is declared wedged. 0 disables the watchdog.
  int64_t stall_ticks = 0;
};

/// One session's heartbeat, read on the producer thread each Tick.
struct Heartbeat {
  int64_t session = 0;    ///< The server's session id.
  int64_t inbox_depth = 0;
  int64_t processed = 0;  ///< StreamEngine's monotonic pump-progress counter.
};

/// Detects wedged session pumps from logical-clock heartbeats: a pump that
/// holds queued events but makes no processing progress for `stall_ticks`
/// ticks is wedged (stuck in a pathological route query, a deadlocked model,
/// an injected hang). The watchdog only *detects* — the server acts on the
/// verdict by quarantining through StreamEngine::Quarantine, the same typed
/// SessionError path a pump exception takes, so the rest of the fleet keeps
/// serving. Detection state is keyed on producer-side counters only, so the
/// verdict sequence for a given heartbeat sequence is deterministic.
class Watchdog {
 public:
  explicit Watchdog(const WatchdogConfig& config) : config_(config) {}

  /// Feeds this tick's heartbeats; returns the sessions newly judged wedged.
  /// Sessions absent from `beats` (finished, quarantined) are forgotten.
  std::vector<int64_t> Observe(int64_t now, const std::vector<Heartbeat>& beats);

  int64_t wedged_total() const { return wedged_total_; }

 private:
  struct Track {
    int64_t processed = 0;
    int64_t since = 0;  ///< Tick when this processed value was first seen.
  };

  WatchdogConfig config_;
  std::unordered_map<int64_t, Track> tracks_;
  int64_t wedged_total_ = 0;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_WATCHDOG_H_
