#include "srv/match_server.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "core/logging.h"
#include "core/strings.h"
#include "srv/journal_events.h"
#include "srv/snapshot.h"

namespace lhmm::srv {

MatchServer::MatchServer(std::vector<TierSpec> tiers,
                         const ServerConfig& config)
    : tiers_(std::move(tiers)),
      config_(config),
      admission_(config.admission),
      ladder_(static_cast<int>(tiers_.size()), config.degrade),
      watchdog_(config.watchdog) {
  CHECK(!tiers_.empty());
  for (const TierSpec& t : tiers_) CHECK(t.factory != nullptr);
  engine_ = std::make_unique<matchers::StreamEngine>(tiers_[0].factory,
                                                     config_.engine);
}

MatchServer::~MatchServer() = default;

const MatchServer::Sess& MatchServer::sess(int64_t id) const {
  CHECK_GE(id, 0);
  CHECK_LT(id, static_cast<int64_t>(sessions_.size()));
  return sessions_[id];
}

int64_t MatchServer::QueueDepth() const {
  int64_t depth = 0;
  for (const Sess& s : sessions_) {
    if (s.engine_id >= 0 && s.open) depth += engine_->inbox_depth(s.engine_id);
  }
  return depth;
}

core::Result<int64_t> MatchServer::OpenSession() {
  if (draining_) {
    return core::Status::Unavailable("server is draining");
  }
  LHMM_RETURN_IF_ERROR(admission_.AdmitOpen(engine_->live_sessions()));
  const int tier = ladder_.tier();
  core::Result<matchers::SessionId> engine_id =
      engine_->TryOpen(tiers_[tier].factory);
  if (!engine_id.ok()) return engine_id.status();
  if (config_.default_deadline_ticks > 0) {
    CHECK_OK(engine_->SetDeadline(*engine_id,
                                  clock_ + config_.default_deadline_ticks));
  }
  Sess s;
  s.engine_id = *engine_id;
  s.tier = tier;
  s.open = true;
  sessions_.push_back(s);
  ++opens_admitted_;
  const int64_t id = static_cast<int64_t>(sessions_.size()) - 1;
  LHMM_RETURN_IF_ERROR(JournalAppend(FormatOpenEvent(id, tier)));
  return id;
}

core::Status MatchServer::Push(int64_t id, const traj::TrajPoint& point) {
  const Sess& s = sess(id);
  if (s.missing) {
    return core::Status::Unavailable("session " + std::to_string(id) +
                                     " was not restored from the snapshot");
  }
  if (draining_) {
    return core::Status::Unavailable("server is draining");
  }
  if (!s.open) {
    // The engine knows why it closed (deadline, quarantine, finish).
    core::Status why = SessionStatus(id);
    if (!why.ok()) return why;
    return core::Status::FailedPrecondition("session " + std::to_string(id) +
                                            " is closed");
  }
  LHMM_RETURN_IF_ERROR(admission_.AdmitPush(QueueDepth()));
  core::Status status = engine_->Push(s.engine_id, point);
  if (status.ok()) {
    ++pushes_admitted_;
    // Journal after the engine accepted it: backpressure rejects are
    // load-dependent, so only accepted points may enter the replayed history.
    LHMM_RETURN_IF_ERROR(JournalAppend(FormatPushEvent(id, point)));
  }
  return status;
}

core::Status MatchServer::Finish(int64_t id) {
  sess(id);  // Bounds check.
  Sess& s = sessions_[id];
  if (s.missing) {
    return core::Status::Unavailable("session " + std::to_string(id) +
                                     " was not restored from the snapshot");
  }
  if (!s.open) {
    return core::Status::FailedPrecondition("session " + std::to_string(id) +
                                            " is already closed");
  }
  s.open = false;
  LHMM_RETURN_IF_ERROR(engine_->Finish(s.engine_id));
  return JournalAppend(FormatFinishEvent(id));
}

core::Status MatchServer::SetDeadline(int64_t id, int64_t deadline_tick) {
  const Sess& s = sess(id);
  if (s.missing || !s.open) {
    return core::Status::FailedPrecondition("session " + std::to_string(id) +
                                            " is not live");
  }
  LHMM_RETURN_IF_ERROR(engine_->SetDeadline(s.engine_id, deadline_tick));
  return JournalAppend(FormatDeadlineEvent(id, deadline_tick));
}

void MatchServer::Tick(int64_t now) {
  if (now > clock_) clock_ = now;
  admission_.Advance(clock_);
  // Deadline expiry and TTL eviction run inside the engine; both are
  // producer-side and deterministic.
  engine_->AdvanceClock(clock_);

  // Reconcile the server-side view of sessions the engine closed (expired,
  // evicted) and feed the watchdog the live pumps' heartbeats.
  std::vector<Heartbeat> beats;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    Sess& s = sessions_[i];
    if (!s.open || s.engine_id < 0) continue;
    const matchers::SessionState st = engine_->state(s.engine_id);
    if (st == matchers::SessionState::kExpired ||
        st == matchers::SessionState::kEvicted ||
        st == matchers::SessionState::kPoisoned) {
      s.open = false;
      continue;
    }
    Heartbeat hb;
    hb.session = static_cast<int64_t>(i);
    hb.inbox_depth = engine_->inbox_depth(s.engine_id);
    hb.processed = engine_->processed_events(s.engine_id);
    beats.push_back(hb);
  }
  for (const int64_t wedged : watchdog_.Observe(clock_, beats)) {
    Sess& s = sessions_[wedged];
    const core::Status st = engine_->Quarantine(
        s.engine_id, "wedged pump: no progress for " +
                         std::to_string(config_.watchdog.stall_ticks) +
                         " ticks with queued events");
    if (st.ok()) s.open = false;
  }

  // Sample pressure and move the degrade ladder.
  PressureSample sample;
  sample.queue_depth = QueueDepth();
  sample.shed = admission_.TakeShedWindow();
  if (config_.fault_signal != nullptr) {
    const int64_t failures = config_.fault_signal->injected_failures();
    sample.route_failures = failures - last_route_failures_;
    last_route_failures_ = failures;
  }
  const int64_t rejected = engine_->rejected_pushes();
  sample.rejected_pushes = rejected - last_rejected_pushes_;
  last_rejected_pushes_ = rejected;
  ladder_.Observe(sample);

  // The tick is the group-commit heartbeat: sample the disk guard first so a
  // scheduled exhaustion window takes effect on its exact tick, then journal
  // the clock move and flush everything buffered since the last tick per the
  // fsync policy. While degraded-nondurable, journaling is suspended
  // entirely — appending to a full disk would just tear segments.
  if (journal_ != nullptr) {
    UpdateDiskGuard();
    if (degraded_nondurable_) {
      ++events_not_journaled_;  // The tick record itself.
    } else {
      core::Status js;
      core::Result<int64_t> idx = journal_->Append(FormatTickEvent(clock_));
      if (!idx.ok()) js = idx.status();
      if (js.ok()) js = journal_->Commit();
      if (js.ok()) {
        last_durable_tick_ = clock_;
        commit_fail_streak_ = 0;
      } else {
        ++journal_errors_;
        ++commit_fail_streak_;
        const int streak = durability_.disk_guard.journal_failure_streak;
        if (journal_->wedged()) {
          EnterDegraded("journal wedged: " + js.message());
        } else if (streak > 0 && commit_fail_streak_ >= streak) {
          EnterDegraded("journal failed " + std::to_string(streak) +
                        " consecutive tick-commits: " + js.message());
        }
      }
    }
  }
}

void MatchServer::Barrier() { engine_->Barrier(); }

int64_t MatchServer::num_sessions() const {
  return static_cast<int64_t>(sessions_.size());
}

matchers::SessionState MatchServer::state(int64_t id) const {
  const Sess& s = sess(id);
  if (s.missing) return matchers::SessionState::kEvicted;
  return engine_->state(s.engine_id);
}

bool MatchServer::finished(int64_t id) const {
  const Sess& s = sess(id);
  if (s.missing || s.engine_id < 0) return false;
  return engine_->finished(s.engine_id);
}

core::Status MatchServer::SessionStatus(int64_t id) const {
  const Sess& s = sess(id);
  if (s.missing) {
    return core::Status::Unavailable("session " + std::to_string(id) +
                                     " was not restored from the snapshot");
  }
  switch (engine_->state(s.engine_id)) {
    case matchers::SessionState::kLive:
    case matchers::SessionState::kFinished:
      return core::Status::Ok();
    case matchers::SessionState::kExpired:
      return core::Status::DeadlineExceeded(
          "session " + std::to_string(id) +
          " passed its deadline; Committed() holds the partial prefix");
    case matchers::SessionState::kEvicted:
      return core::Status::Unavailable("session " + std::to_string(id) +
                                       " was evicted (idle TTL or cap)");
    case matchers::SessionState::kPoisoned:
      return engine_->SessionError(s.engine_id);
  }
  return core::Status::Internal("unreachable");
}

const std::vector<network::SegmentId>& MatchServer::Committed(
    int64_t id) const {
  static const std::vector<network::SegmentId> kEmpty;
  const Sess& s = sess(id);
  if (s.missing || s.engine_id < 0) return kEmpty;
  return engine_->Committed(s.engine_id);
}

matchers::SessionStats MatchServer::Stats(int64_t id) const {
  const Sess& s = sess(id);
  if (s.missing || s.engine_id < 0) return {};
  return engine_->Stats(s.engine_id);
}

int64_t MatchServer::ProcessedEvents(int64_t id) const {
  const Sess& s = sess(id);
  if (s.missing || s.engine_id < 0) return 0;
  return engine_->processed_events(s.engine_id);
}

int MatchServer::session_tier(int64_t id) const { return sess(id).tier; }

ServerMetrics MatchServer::metrics() const {
  ServerMetrics m;
  m.opens_admitted = opens_admitted_;
  m.opens_shed = admission_.shed_opens();
  m.pushes_admitted = pushes_admitted_;
  m.pushes_shed = admission_.shed_pushes();
  m.pushes_rejected = engine_->rejected_pushes();
  m.expired_sessions = engine_->expired_sessions();
  m.quarantined_sessions = engine_->quarantined_sessions();
  m.evicted_sessions = engine_->evicted_sessions();
  m.downgrades = ladder_.downgrades();
  m.upgrades = ladder_.upgrades();
  m.active_tier = ladder_.tier();
  m.live_sessions = engine_->live_sessions();
  m.queue_depth = QueueDepth();
  m.clock = clock_;
  m.sessions_not_durable = sessions_not_durable_;
  return m;
}

core::Result<ServerSnapshot> MatchServer::CaptureSnapshot(
    std::vector<int64_t>* unsupported) {
  ServerSnapshot snap;
  snap.clock = clock_;
  snap.tier = ladder_.tier();
  snap.total_sessions = static_cast<int64_t>(sessions_.size());

  for (size_t i = 0; i < sessions_.size(); ++i) {
    Sess& s = sessions_[i];
    if (!s.open || s.engine_id < 0) continue;
    if (engine_->state(s.engine_id) != matchers::SessionState::kLive) {
      // Reconcile: the engine closed it (deadline, eviction, quarantine).
      s.open = false;
      continue;
    }
    core::Result<matchers::SessionCheckpoint> cp =
        engine_->CheckpointSession(s.engine_id);
    if (!cp.ok()) {
      if (cp.status().code() == core::StatusCode::kUnimplemented) {
        unsupported->push_back(static_cast<int64_t>(i));
        continue;
      }
      return cp.status();
    }
    SessionRecord rec;
    rec.server_id = static_cast<int64_t>(i);
    rec.tier = s.tier;
    rec.deadline_tick = engine_->deadline_tick(s.engine_id);
    rec.checkpoint = std::move(cp).value();
    snap.sessions.push_back(std::move(rec));
  }
  return snap;
}

core::Status MatchServer::Drain(const std::string& path) {
  draining_ = true;
  // Flush every inbox so each live session is quiescent and checkpointable.
  engine_->Barrier();

  std::vector<int64_t> finish_instead;
  core::Result<ServerSnapshot> snap = CaptureSnapshot(&finish_instead);
  if (!snap.ok()) {
    draining_ = false;
    return snap.status();
  }
  // Write the snapshot BEFORE committing any session-state change: a drain
  // that cannot complete (unwritable path, full disk) must leave the server
  // serving, not wedged in a draining state with its sessions closed and no
  // snapshot on disk. Concretely, lhmm_serve's EOF/SIGTERM shutdown skips
  // its own --snapshot drain when draining() is already true — before this
  // ordering, a failed `drain` verb made that skip silently lose every live
  // session. Now drain-vs-EOF is deterministic: a successful drain verb wins
  // (shutdown skips), a failed one leaves the server live so shutdown
  // completes the drain itself.
  const core::Status saved = SaveServerSnapshot(*snap, path, env_);
  if (!saved.ok()) {
    draining_ = false;
    return saved;
  }
  for (const SessionRecord& rec : snap->sessions) {
    sessions_[rec.server_id].open = false;
  }
  for (const int64_t id : finish_instead) {
    // Not a resumable family: complete it now so its output is final.
    Sess& s = sessions_[id];
    s.open = false;
    LHMM_RETURN_IF_ERROR(engine_->Finish(s.engine_id));
  }
  if (!finish_instead.empty()) engine_->Barrier();

  return core::Status::Ok();
}

core::Result<std::unique_ptr<MatchServer>> MatchServer::Restore(
    const std::string& path, std::vector<TierSpec> tiers,
    const ServerConfig& config) {
  core::Result<ServerSnapshot> snap = LoadServerSnapshot(path);
  if (!snap.ok()) return snap.status();
  return FromSnapshot(*snap, std::move(tiers), config, path);
}

core::Result<std::unique_ptr<MatchServer>> MatchServer::FromSnapshot(
    const ServerSnapshot& snap, std::vector<TierSpec> tiers,
    const ServerConfig& config, const std::string& origin) {
  auto server = std::make_unique<MatchServer>(std::move(tiers), config);
  server->clock_ = snap.clock;
  server->admission_.Advance(snap.clock);
  server->engine_->AdvanceClock(snap.clock);
  if (snap.tier >= static_cast<int>(server->tiers_.size())) {
    return core::Status::InvalidArgument(
        origin + ": snapshot tier " + std::to_string(snap.tier) +
        " but only " + std::to_string(server->tiers_.size()) +
        " tiers configured");
  }
  server->ladder_.ForceTier(snap.tier);

  // Ids are dense and preserved: unrestored ids stay addressable but report
  // kUnavailable, so clients holding stale handles get a typed answer.
  server->sessions_.assign(static_cast<size_t>(snap.total_sessions), Sess{});
  for (Sess& s : server->sessions_) s.missing = true;

  for (const SessionRecord& rec : snap.sessions) {
    if (rec.tier >= static_cast<int>(server->tiers_.size())) {
      return core::Status::InvalidArgument(
          origin + ": session " + std::to_string(rec.server_id) +
          " uses tier " + std::to_string(rec.tier) + ", not configured");
    }
    core::Result<matchers::SessionId> engine_id = server->engine_->OpenRestored(
        rec.checkpoint, server->tiers_[rec.tier].factory);
    if (!engine_id.ok()) return engine_id.status();
    Sess& s = server->sessions_[rec.server_id];
    s.engine_id = *engine_id;
    s.tier = rec.tier;
    s.open = true;
    s.missing = false;
    if (rec.deadline_tick >= 0) {
      // v2: the exact deadline the session had, so it expires at the
      // original tick — required for byte-identical crash recovery.
      if (rec.deadline_tick > 0) {
        CHECK_OK(server->engine_->SetDeadline(*engine_id, rec.deadline_tick));
      }
    } else if (config.default_deadline_ticks > 0) {
      // v1 snapshots predate the field: re-arm the default (legacy behavior).
      CHECK_OK(server->engine_->SetDeadline(
          *engine_id, server->clock_ + config.default_deadline_ticks));
    }
  }
  return server;
}

core::Status MatchServer::EnableDurability(const DurabilityConfig& config) {
  if (journal_ != nullptr) {
    return core::Status::FailedPrecondition("durability already enabled");
  }
  if (config.dir.empty()) {
    return core::Status::InvalidArgument("durability dir is empty");
  }
  if (config.keep_snapshots < 1) {
    return core::Status::InvalidArgument("keep_snapshots must be >= 1");
  }
  DurabilityConfig resolved = config;
  if (resolved.env == nullptr) resolved.env = io::Env::Default();
  if (resolved.journal.env == nullptr) resolved.journal.env = resolved.env;
  core::Result<std::unique_ptr<io::JournalWriter>> journal =
      io::JournalWriter::Open(resolved.dir, resolved.journal);
  if (!journal.ok()) return journal.status();
  journal_ = std::move(*journal);
  durability_ = resolved;
  env_ = resolved.env;
  if (resolved.disk_guard.low_watermark_bytes > 0) {
    disk_guard_ = std::make_unique<DiskGuard>(resolved.disk_guard);
  }
  const std::vector<int> gens = ListSnapshotGenerations(config.dir);
  snapshot_gen_ = gens.empty() ? 0 : gens.back();
  return core::Status::Ok();
}

core::Status MatchServer::JournalAppend(const std::string& line) {
  if (journal_ == nullptr) return core::Status::Ok();
  const bool every_record =
      durability_.journal.fsync == io::FsyncPolicy::kEveryRecord;
  if (degraded_nondurable_) {
    ++events_not_journaled_;
    // Group-commit policies never promised per-record durability, so the
    // ack stays ok and the degraded state is what clients must watch. Under
    // kEveryRecord the ack itself was the promise — break it loudly.
    if (every_record) {
      return core::Status::DataLoss(
          "event applied but not durable: journaling suspended "
          "(degraded-nondurable)");
    }
    return core::Status::Ok();
  }
  core::Result<int64_t> index = journal_->Append(line);
  if (!index.ok()) {
    ++journal_errors_;
    if (journal_->wedged()) {
      EnterDegraded("journal wedged: " + index.status().message());
    }
    if (every_record) {
      return core::Status::DataLoss("event applied but not durable: " +
                                    index.status().message());
    }
    // Buffered-append failures outside kEveryRecord only happen once the
    // journal is wedged; the tick path owns degraded-mode bookkeeping.
  }
  return core::Status::Ok();
}

void MatchServer::UpdateDiskGuard() {
  if (disk_guard_ != nullptr) {
    core::Result<io::DiskSpace> space = env_->GetDiskSpace(durability_.dir);
    // An unstat-able filesystem counts as exhausted: if statvfs fails we
    // cannot promise durability either.
    const int64_t free = space.ok() ? space->available_bytes : 0;
    switch (disk_guard_->Observe(free)) {
      case DiskGuard::Transition::kEnterDegraded:
        EnterDegraded("disk free " + std::to_string(free) +
                      " bytes below low watermark");
        break;
      case DiskGuard::Transition::kExitDegraded:
      case DiskGuard::Transition::kNone:
        break;
    }
  }
  // Restoration: space is back (or the guard is off) and the journal can
  // still be written — take the fresh checkpoint that re-covers state.
  if (degraded_nondurable_ && !journal_->wedged() &&
      (disk_guard_ == nullptr || !disk_guard_->degraded())) {
    TryRestoreDurability();
  }
}

void MatchServer::EnterDegraded(const std::string& why) {
  if (degraded_nondurable_) return;
  degraded_nondurable_ = true;
  ++degraded_entered_;
  commit_fail_streak_ = 0;
  LOG_WARNING << "entering degraded-nondurable mode: " << why;
}

void MatchServer::TryRestoreDurability() {
  // The checkpoint is the exit gate: it flushes anything still buffered in
  // the journal, snapshots full server state (covering every event applied
  // while journaling was suspended), and compacts. Only a *complete*
  // success restores the durability claim; any failure leaves the server
  // degraded and the next tick retries.
  const core::Status st = DoCheckpoint();
  if (!st.ok()) return;
  degraded_nondurable_ = false;
  ++degraded_exited_;
  LOG_INFO << "degraded-nondurable mode exited: checkpoint generation "
            << snapshot_gen_ << " restored durability";
}

DurabilityStatus MatchServer::durability_status() const {
  DurabilityStatus d;
  if (journal_ == nullptr) return d;
  d.enabled = true;
  d.journal_segments = journal_->segment_count();
  d.journal_bytes = journal_->total_bytes();
  d.last_durable_index = journal_->last_committed_index();
  d.last_durable_tick = last_durable_tick_;
  d.snapshot_generation = snapshot_gen_;
  d.journal_errors = journal_errors_;
  d.degraded_nondurable = degraded_nondurable_;
  d.degraded_entered = degraded_entered_;
  d.degraded_exited = degraded_exited_;
  d.events_not_journaled = events_not_journaled_;
  d.journal_seal_events = journal_->seal_events();
  d.journal_wedged = journal_->wedged();
  d.disk_free_bytes =
      disk_guard_ != nullptr ? disk_guard_->last_free_bytes() : -1;
  return d;
}

core::Status MatchServer::Checkpoint() {
  if (journal_ == nullptr) {
    return core::Status::FailedPrecondition(
        "durability not enabled (EnableDurability)");
  }
  if (degraded_nondurable_) {
    return core::Status::Unavailable(
        "degraded-nondurable: checkpoint refused until disk space frees "
        "(durability restores itself with a fresh checkpoint)");
  }
  return DoCheckpoint();
}

core::Status MatchServer::DoCheckpoint() {
  // Flush the journal first so journal_pos below is on disk, then quiesce the
  // engine so every live session is checkpointable.
  LHMM_RETURN_IF_ERROR(journal_->Commit());
  engine_->Barrier();

  std::vector<int64_t> unsupported;
  core::Result<ServerSnapshot> snap = CaptureSnapshot(&unsupported);
  if (!snap.ok()) return snap.status();
  sessions_not_durable_ = static_cast<int64_t>(unsupported.size());
  snap->journal_pos = journal_->next_index() - 1;

  const int gen = snapshot_gen_ + 1;
  LHMM_RETURN_IF_ERROR(
      SaveServerSnapshot(*snap, SnapshotGenPath(durability_.dir, gen), env_));
  snapshot_gen_ = gen;
  last_durable_tick_ = clock_;
  PruneSnapshots();

  // Compact only the journal prefix covered by EVERY kept generation, not
  // just the newest: recovery falls back to an older snapshot when the newest
  // is corrupt, and that fallback needs its own journal suffix intact.
  int64_t covered = snap->journal_pos;
  for (const int g : ListSnapshotGenerations(durability_.dir)) {
    if (g == gen) continue;
    core::Result<ServerSnapshot> old = LoadServerSnapshot(
        SnapshotGenPath(durability_.dir, g));
    // A kept generation that no longer loads can't be a fallback; it doesn't
    // hold any journal back.
    if (old.ok()) covered = std::min(covered, old->journal_pos);
  }
  return journal_->CompactThrough(covered);
}

void MatchServer::PruneSnapshots() {
  namespace fs = std::filesystem;
  for (const int gen : ListSnapshotGenerations(durability_.dir)) {
    if (gen <= snapshot_gen_ - durability_.keep_snapshots) {
      std::error_code ec;
      fs::remove(SnapshotGenPath(durability_.dir, gen), ec);
    }
  }
}

core::Status MatchServer::ReplayOpen(int64_t id, int tier) {
  if (tier < 0 || tier >= static_cast<int>(tiers_.size())) {
    return core::Status::InvalidArgument(
        "journaled open uses tier " + std::to_string(tier) + ", but only " +
        std::to_string(tiers_.size()) + " tiers configured");
  }
  if (id != static_cast<int64_t>(sessions_.size())) {
    return core::Status::Internal(
        "journaled open has id " + std::to_string(id) + " but replay is at " +
        std::to_string(sessions_.size()) +
        " (journal does not continue this snapshot)");
  }
  core::Result<matchers::SessionId> engine_id =
      engine_->TryOpen(tiers_[tier].factory);
  if (!engine_id.ok()) return engine_id.status();
  if (config_.default_deadline_ticks > 0) {
    // Replayed ticks put clock_ at the value the original open saw, so the
    // default deadline lands on the original tick.
    CHECK_OK(engine_->SetDeadline(*engine_id,
                                  clock_ + config_.default_deadline_ticks));
  }
  Sess s;
  s.engine_id = *engine_id;
  s.tier = tier;
  s.open = true;
  sessions_.push_back(s);
  ++opens_admitted_;
  return core::Status::Ok();
}

core::Status MatchServer::ReplayPush(int64_t id, const traj::TrajPoint& point) {
  if (id < 0 || id >= static_cast<int64_t>(sessions_.size())) {
    return core::Status::InvalidArgument("journaled push names session " +
                                         std::to_string(id) +
                                         ", outside the id space");
  }
  const Sess& s = sessions_[id];
  if (s.missing || s.engine_id < 0) {
    return core::Status::Unavailable("session " + std::to_string(id) +
                                     " was not restored (not checkpointable)");
  }
  if (!s.open) {
    return core::Status::FailedPrecondition("session " + std::to_string(id) +
                                            " closed earlier in replay");
  }
  return engine_->PushBlocking(s.engine_id, point);
}

core::Status MatchServer::ReplayFinish(int64_t id) {
  if (id < 0 || id >= static_cast<int64_t>(sessions_.size())) {
    return core::Status::InvalidArgument("journaled finish names session " +
                                         std::to_string(id) +
                                         ", outside the id space");
  }
  Sess& s = sessions_[id];
  if (s.missing || s.engine_id < 0) {
    return core::Status::Unavailable("session " + std::to_string(id) +
                                     " was not restored (not checkpointable)");
  }
  if (!s.open) {
    return core::Status::FailedPrecondition("session " + std::to_string(id) +
                                            " closed earlier in replay");
  }
  s.open = false;
  return engine_->Finish(s.engine_id);
}

core::Status MatchServer::ReplaySetDeadline(int64_t id, int64_t deadline_tick) {
  if (id < 0 || id >= static_cast<int64_t>(sessions_.size())) {
    return core::Status::InvalidArgument("journaled deadline names session " +
                                         std::to_string(id) +
                                         ", outside the id space");
  }
  const Sess& s = sessions_[id];
  if (s.missing || s.engine_id < 0) {
    return core::Status::Unavailable("session " + std::to_string(id) +
                                     " was not restored (not checkpointable)");
  }
  if (!s.open) {
    return core::Status::FailedPrecondition("session " + std::to_string(id) +
                                            " closed earlier in replay");
  }
  return engine_->SetDeadline(s.engine_id, deadline_tick);
}

void MatchServer::ReplayTick(int64_t now) {
  if (now > clock_) clock_ = now;
  admission_.Advance(clock_);
  // Deadline expiry and TTL eviction are producer-side and deterministic, so
  // replaying them reproduces the original closures exactly. The watchdog and
  // degrade ladder are deliberately NOT run: both react to load/timing the
  // replay does not reproduce, and neither affects committed output (the
  // ladder only changes future opens, whose tier the journal records).
  engine_->AdvanceClock(clock_);
  for (Sess& s : sessions_) {
    if (!s.open || s.engine_id < 0) continue;
    const matchers::SessionState st = engine_->state(s.engine_id);
    if (st == matchers::SessionState::kExpired ||
        st == matchers::SessionState::kEvicted ||
        st == matchers::SessionState::kPoisoned) {
      s.open = false;
    }
  }
}

std::string SnapshotGenPath(const std::string& dir, int gen) {
  return dir + "/" + core::StrFormat("snapshot-%06d.snap", gen);
}

std::vector<int> ListSnapshotGenerations(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<int> gens;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return gens;
  for (const fs::directory_entry& entry : it) {
    const std::string name = entry.path().filename().string();
    // snapshot-NNNNNN.snap, exactly; .tmp in-progress files never match.
    if (name.size() != 20 || name.rfind("snapshot-", 0) != 0 ||
        name.compare(15, 5, ".snap") != 0) {
      continue;
    }
    bool digits = true;
    for (int i = 9; i < 15; ++i) {
      if (name[i] < '0' || name[i] > '9') digits = false;
    }
    if (!digits) continue;
    gens.push_back(std::atoi(name.substr(9, 6).c_str()));
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

}  // namespace lhmm::srv
