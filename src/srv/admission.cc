#include "srv/admission.h"

#include <algorithm>
#include <string>

#include "core/logging.h"

namespace lhmm::srv {

TokenBucket::TokenBucket(double rate_per_tick, double burst)
    : rate_per_tick_(rate_per_tick),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

void TokenBucket::Advance(int64_t now) {
  if (!enabled() || now <= last_tick_) return;
  tokens_ = std::min(
      burst_, tokens_ + rate_per_tick_ * static_cast<double>(now - last_tick_));
  last_tick_ = now;
}

bool TokenBucket::TryAcquire() {
  if (!enabled()) return true;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      open_bucket_(config.open_rate_per_tick, config.open_burst),
      push_bucket_(config.push_rate_per_tick, config.push_burst) {
  CHECK_GE(config_.max_queue_depth, 0);
  CHECK_GE(config_.max_live_sessions, 0);
}

void AdmissionController::Advance(int64_t now) {
  open_bucket_.Advance(now);
  push_bucket_.Advance(now);
}

core::Status AdmissionController::AdmitOpen(int64_t live_sessions) {
  if (config_.max_live_sessions > 0 &&
      live_sessions >= config_.max_live_sessions) {
    ++shed_opens_;
    ++shed_window_;
    return core::Status::Unavailable(
        "session limit reached (" + std::to_string(live_sessions) + " live)");
  }
  if (!open_bucket_.TryAcquire()) {
    ++shed_opens_;
    ++shed_window_;
    return core::Status::ResourceExhausted("open rate limit exceeded");
  }
  return core::Status::Ok();
}

core::Status AdmissionController::AdmitPush(int64_t queue_depth) {
  if (config_.max_queue_depth > 0 && queue_depth >= config_.max_queue_depth) {
    ++shed_pushes_;
    ++shed_window_;
    return core::Status::Unavailable(
        "server overloaded: " + std::to_string(queue_depth) +
        " events queued");
  }
  if (!push_bucket_.TryAcquire()) {
    ++shed_pushes_;
    ++shed_window_;
    return core::Status::ResourceExhausted("push rate limit exceeded");
  }
  return core::Status::Ok();
}

int64_t AdmissionController::TakeShedWindow() {
  const int64_t w = shed_window_;
  shed_window_ = 0;
  return w;
}

}  // namespace lhmm::srv
