#ifndef LHMM_SRV_DISK_GUARD_H_
#define LHMM_SRV_DISK_GUARD_H_

#include <cstdint>

namespace lhmm::srv {

/// Watermarks and hysteresis for the disk-space monitor. Watermarks are
/// *free-space* thresholds on the filesystem holding the durability
/// directory: below `low_watermark_bytes` the server should stop journaling
/// (degraded-nondurable) before ENOSPC starts tearing writes; durability is
/// restored only once free space climbs back above `high_watermark_bytes`
/// (strictly higher, so the guard cannot flap at the boundary).
struct DiskGuardConfig {
  /// Free bytes below which the sample counts as exhausted. 0 disables the
  /// watermark monitor entirely (journal failures can still degrade the
  /// server via `journal_failure_streak`).
  int64_t low_watermark_bytes = 0;
  /// Free bytes the filesystem must regain before a recovery is attempted.
  /// Clamped up to low_watermark_bytes when configured lower.
  int64_t high_watermark_bytes = 0;
  /// Consecutive exhausted samples before entering degraded mode.
  int enter_after = 1;
  /// Consecutive recovered samples before leaving degraded mode.
  int exit_after = 2;
  /// Consecutive failed journal tick-commits that force degraded mode even
  /// with the watermark monitor disabled (the disk is telling us directly).
  /// 0 disables.
  int journal_failure_streak = 3;
};

/// The disk-space state machine, mirroring DegradeLadder: Observe() feeds
/// one free-space sample per tick and the state is a pure function of the
/// observed sample sequence — no wall time, no randomness — so a scheduled
/// (or replayed) exhaustion window produces its transitions on exactly the
/// same ticks every run.
class DiskGuard {
 public:
  enum class State { kNormal, kDegraded };
  /// What one Observe() call decided.
  enum class Transition { kNone, kEnterDegraded, kExitDegraded };

  explicit DiskGuard(const DiskGuardConfig& config);

  /// Feeds one free-space sample (bytes available on the durability
  /// filesystem; pass 0 when statvfs itself failed — an unstat-able disk
  /// counts as exhausted).
  Transition Observe(int64_t free_bytes);

  State state() const { return state_; }
  bool degraded() const { return state_ == State::kDegraded; }
  int64_t last_free_bytes() const { return last_free_bytes_; }

 private:
  DiskGuardConfig config_;
  State state_ = State::kNormal;
  int exhausted_streak_ = 0;
  int recovered_streak_ = 0;
  int64_t last_free_bytes_ = -1;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_DISK_GUARD_H_
