#include "srv/disk_guard.h"

#include <algorithm>

namespace lhmm::srv {

DiskGuard::DiskGuard(const DiskGuardConfig& config) : config_(config) {
  // A high watermark at or below the low one would re-enter degraded on the
  // very next sample; clamp so exit always needs strictly more free space.
  config_.high_watermark_bytes =
      std::max(config_.high_watermark_bytes, config_.low_watermark_bytes);
  config_.enter_after = std::max(config_.enter_after, 1);
  config_.exit_after = std::max(config_.exit_after, 1);
}

DiskGuard::Transition DiskGuard::Observe(int64_t free_bytes) {
  last_free_bytes_ = free_bytes;
  if (config_.low_watermark_bytes <= 0) return Transition::kNone;
  if (state_ == State::kNormal) {
    recovered_streak_ = 0;
    if (free_bytes < config_.low_watermark_bytes) {
      if (++exhausted_streak_ >= config_.enter_after) {
        state_ = State::kDegraded;
        exhausted_streak_ = 0;
        return Transition::kEnterDegraded;
      }
    } else {
      exhausted_streak_ = 0;
    }
    return Transition::kNone;
  }
  // Degraded: wait for the filesystem to clear the *high* watermark for
  // exit_after consecutive samples. A single freed block must not bounce
  // the server straight back into (and then out of) durable mode.
  exhausted_streak_ = 0;
  if (free_bytes >= config_.high_watermark_bytes) {
    if (++recovered_streak_ >= config_.exit_after) {
      state_ = State::kNormal;
      recovered_streak_ = 0;
      return Transition::kExitDegraded;
    }
  } else {
    recovered_streak_ = 0;
  }
  return Transition::kNone;
}

}  // namespace lhmm::srv
