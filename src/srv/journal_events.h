#ifndef LHMM_SRV_JOURNAL_EVENTS_H_
#define LHMM_SRV_JOURNAL_EVENTS_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "traj/trajectory.h"

namespace lhmm::srv {

/// The journal record payloads a durable MatchServer appends — one text line
/// per externally visible event, written by the Format* helpers and decoded
/// by ParseJournalEvent during crash recovery:
///
///   open <id> <tier>              session admitted at a degrade tier
///   push <id> <x> <y> <t> <tower> point accepted (doubles as %.17g)
///   finish <id>                   end-of-stream accepted
///   deadline <id> <tick>          explicit absolute deadline armed (0 disarms)
///   tick <now>                    server heartbeat (advances the clock)
///
/// The tier is journaled with the open (not re-derived at replay) because the
/// degrade ladder moves on load pressure, which a replay does not reproduce.
/// Doubles use %.17g so a replayed point is bit-identical to the accepted one.
struct JournalEvent {
  enum class Kind { kOpen, kPush, kFinish, kDeadline, kTick };
  Kind kind = Kind::kTick;
  int64_t id = 0;           ///< Session id (open/push/finish/deadline).
  int tier = 0;             ///< Degrade tier (open).
  traj::TrajPoint point;    ///< The accepted point (push).
  int64_t tick = 0;         ///< Absolute deadline (deadline) or clock (tick).
};

std::string FormatOpenEvent(int64_t id, int tier);
std::string FormatPushEvent(int64_t id, const traj::TrajPoint& point);
std::string FormatFinishEvent(int64_t id);
std::string FormatDeadlineEvent(int64_t id, int64_t deadline_tick);
std::string FormatTickEvent(int64_t now);

/// Decodes one journal payload. A payload that does not parse is corruption
/// that slipped past the journal's CRC framing (or a version skew) and comes
/// back as kInvalidArgument naming the payload.
core::Result<JournalEvent> ParseJournalEvent(const std::string& payload);

}  // namespace lhmm::srv

#endif  // LHMM_SRV_JOURNAL_EVENTS_H_
