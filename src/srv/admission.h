#ifndef LHMM_SRV_ADMISSION_H_
#define LHMM_SRV_ADMISSION_H_

#include <cstdint>

#include "core/status.h"

namespace lhmm::srv {

/// A token bucket driven by the server's logical clock (never wall time):
/// `rate_per_tick` tokens refill per tick up to `burst`. Because refills are
/// a pure function of the producer's Tick sequence and every acquire happens
/// on the producer thread, admission decisions are deterministic — the same
/// request sequence against the same tick sequence sheds the same requests at
/// every thread count.
class TokenBucket {
 public:
  /// rate_per_tick <= 0 disables the limit (TryAcquire always succeeds).
  TokenBucket(double rate_per_tick, double burst);

  /// Refills for the ticks elapsed since the last Advance. Monotonic: going
  /// backwards is a no-op.
  void Advance(int64_t now);

  /// Takes one token if available.
  bool TryAcquire();

  double tokens() const { return tokens_; }
  bool enabled() const { return rate_per_tick_ > 0.0; }

 private:
  double rate_per_tick_;
  double burst_;
  double tokens_;
  int64_t last_tick_ = 0;
};

/// Admission knobs of srv::MatchServer. Zero disables a limit.
struct AdmissionConfig {
  /// Token-bucket rate limit on session opens, per logical tick.
  double open_rate_per_tick = 0.0;
  double open_burst = 1.0;
  /// Token-bucket rate limit on point pushes, per logical tick.
  double push_rate_per_tick = 0.0;
  double push_burst = 1.0;
  /// Load shedding: pushes are refused while the total queued-event depth
  /// across all live sessions is at or above this. Depth reflects how far the
  /// worker pumps have fallen behind, so — unlike the token buckets — this
  /// signal is load-dependent, not deterministic across thread counts; tests
  /// assert its accounting invariants, not exact shed sequences.
  int64_t max_queue_depth = 0;
  /// Session opens are refused (not LRU-evicted — that is the engine cap's
  /// policy) while this many sessions are live.
  int64_t max_live_sessions = 0;
};

/// Front door of the serving stack: decides, before any work is queued,
/// whether a request is admitted. Every refusal is a typed Status the client
/// can act on — kResourceExhausted for rate limits (retry after backoff),
/// kUnavailable for overload shedding (retry after longer backoff) — and is
/// counted; nothing is ever silently dropped.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  /// Advances both buckets to the server's logical time.
  void Advance(int64_t now);

  /// Admission check for OpenSession given the current live-session count.
  core::Status AdmitOpen(int64_t live_sessions);

  /// Admission check for Push given the current total queue depth.
  core::Status AdmitPush(int64_t queue_depth);

  int64_t shed_opens() const { return shed_opens_; }
  int64_t shed_pushes() const { return shed_pushes_; }
  /// Sheds (opens + pushes) since the last TakeShedWindow call; the degrade
  /// ladder samples pressure through this.
  int64_t TakeShedWindow();

 private:
  AdmissionConfig config_;
  TokenBucket open_bucket_;
  TokenBucket push_bucket_;
  int64_t shed_opens_ = 0;
  int64_t shed_pushes_ = 0;
  int64_t shed_window_ = 0;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_ADMISSION_H_
