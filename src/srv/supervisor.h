#ifndef LHMM_SRV_SUPERVISOR_H_
#define LHMM_SRV_SUPERVISOR_H_

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/status.h"

namespace lhmm::srv {

/// Restart backoff for a crashed worker, in logical ticks.
struct BackoffConfig {
  /// Delay before the first restart; doubles per consecutive crash.
  int64_t base_ticks = 2;
  /// Ceiling on the pre-jitter delay.
  int64_t cap_ticks = 64;
  /// Seed of the deterministic jitter stream (see BackoffDelay).
  uint64_t jitter_seed = 0x5eedULL;
};

/// The delay before restart attempt `attempt` (0-based) of worker `key`:
/// min(base_ticks << attempt, cap_ticks) plus a jitter in [0, delay/2].
/// The jitter is a pure hash of (jitter_seed, key, attempt) — no wall clock,
/// no shared RNG state — so a given config replays the exact same schedule,
/// while distinct workers desynchronize instead of thundering back together.
int64_t BackoffDelay(const BackoffConfig& config, int64_t key, int attempt);

/// Crash-loop circuit breaker thresholds.
struct BreakerConfig {
  /// Crashes within window_ticks that trip the breaker (park the worker).
  int max_crashes = 5;
  /// Sliding window, in logical ticks. 0 disables the breaker entirely.
  int64_t window_ticks = 0;
};

/// Sliding-window crash counter: the breaker trips when the recorded crash is
/// the max_crashes-th within the last window_ticks. Pure logical-clock
/// arithmetic — the verdict sequence for a given (tick, crash) sequence is
/// deterministic, which is what tests/supervisor_test.cc pins down.
class CrashLoopBreaker {
 public:
  explicit CrashLoopBreaker(const BreakerConfig& config) : config_(config) {}

  /// Records a crash observed at `now`; returns true when the breaker trips
  /// with this crash (and latches — see tripped()).
  bool RecordCrash(int64_t now);

  /// Crashes still inside the window ending at `now` (without recording one).
  int CrashesInWindow(int64_t now) const;

  bool tripped() const { return tripped_; }
  void Reset();

 private:
  BreakerConfig config_;
  std::deque<int64_t> crash_ticks_;
  bool tripped_ = false;
};

/// One supervised process: the argv to exec and, optionally, where it
/// publishes its port (the atomic --port-file handshake) so the supervisor
/// can health-probe it over the socket transport.
struct WorkerSpec {
  std::string name;
  std::vector<std::string> argv;  ///< argv[0] is the binary path.
  /// When non-empty: unlinked before every (re)spawn and re-read for health
  /// probes, so a probe can never dial a dead incarnation's port.
  std::string port_file;
};

struct SupervisorConfig {
  BackoffConfig backoff;
  BreakerConfig breaker;
  /// Ticks between health probes per worker; 0 disables probing. Probing
  /// requires the worker's WorkerSpec.port_file.
  int64_t health_interval_ticks = 0;
  /// No probes for this many ticks after a (re)spawn — recovery replay and
  /// listener setup are not wedges.
  int64_t health_grace_ticks = 0;
  /// Consecutive failed probes before the worker is declared wedged and
  /// SIGKILLed (the exit is then handled like any crash: restart via backoff,
  /// crashes feed the breaker).
  int health_misses = 3;
  /// Socket send/receive timeout of one probe round trip, in milliseconds
  /// (wall time — the probe talks to a real socket).
  int health_timeout_ms = 500;
};

enum class WorkerState {
  kIdle,     ///< Not yet started.
  kRunning,  ///< Live (as far as waitpid has said).
  kBackoff,  ///< Crashed; restart scheduled at restart_at.
  kParked,   ///< Crash-loop breaker tripped; no further restarts.
  kExited,   ///< Exited clean (or was drained); no restart.
};

const char* WorkerStateName(WorkerState s);

struct WorkerStatus {
  WorkerState state = WorkerState::kIdle;
  pid_t pid = -1;          ///< Current incarnation; -1 when not running.
  int64_t started_at = 0;  ///< Tick of the last (re)spawn.
  int64_t restart_at = 0;  ///< Due tick while in kBackoff.
  int attempt = 0;         ///< Consecutive-crash restart attempt counter.
  int health_miss_streak = 0;
  int64_t restarts = 0;     ///< Successful re-spawns after a crash.
  int64_t crashes = 0;      ///< Abnormal exits (nonzero status or signal).
  int64_t clean_exits = 0;  ///< Zero-status exits.
  int64_t health_kills = 0; ///< SIGKILLs issued for failed probes.
  /// Store generation from the worker's last successful health probe
  /// (`store=` field); -1 until seen or when the worker runs owned-mode.
  /// lhmm_fleet's status table surfaces this so generation skew across a
  /// fleet mid-rollout is visible at a glance.
  int64_t store_gen = -1;
};

/// Resident set size of `pid` in KiB from /proc/<pid>/statm; -1 when the
/// process is gone or /proc is unavailable.
int64_t ReadRssKb(pid_t pid);

/// Fleet-level counters (sums over workers, plus parked count).
struct SupervisorMetrics {
  int64_t restarts = 0;
  int64_t crashes = 0;
  int64_t clean_exits = 0;
  int64_t health_kills = 0;
  int64_t parked = 0;
  int64_t running = 0;
};

/// The self-healing process supervisor behind tools/lhmm_fleet: fork/execs
/// each WorkerSpec, detects exits with waitpid(WNOHANG), distinguishes clean
/// shutdown (exit 0: no restart) from crashes (nonzero exit or a signal:
/// restart through deterministic exponential backoff + jitter), and parks a
/// crash-looping worker once CrashLoopBreaker trips — the rest of the fleet
/// keeps serving degraded. With health probing enabled it also dials each
/// worker's published port, sends the `health` verb over the frame protocol,
/// and SIGKILL-restarts a worker that stops answering — the PR-4 watchdog
/// idea extended across process boundaries. Restarted durable workers come
/// back through srv::Recover because their argv carries --durable: the
/// supervisor restarts processes, the journal restores their state.
///
/// Time is an injectable logical clock: the caller feeds `now` into Poll()
/// at whatever cadence it likes (lhmm_fleet maps wall milliseconds to ticks;
/// the fleet gauntlet drives it from its own loop). Only the health-probe
/// socket round trip touches wall time, bounded by health_timeout_ms.
///
/// Threading contract: all methods are called from one supervision thread.
/// Workers are tied to their spawning thread with PR_SET_PDEATHSIG(SIGKILL)
/// so a kill -9'd harness never leaks server processes — which also means
/// the thread that calls StartAll/Poll must outlive the workers: run Drain()
/// and WaitAll() (or the destructor) before that thread exits.
class Supervisor {
 public:
  Supervisor(std::vector<WorkerSpec> specs, const SupervisorConfig& config);
  /// SIGKILLs and reaps anything still running (tests and crashed harnesses
  /// must not leak worker processes).
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawns every worker. Partial failure is surfaced but the successfully
  /// spawned workers keep running (Poll supervises them either way).
  core::Status StartAll(int64_t now);

  /// The supervision heartbeat: reaps exits, classifies clean-vs-crash,
  /// schedules and performs due restarts, and runs due health probes.
  void Poll(int64_t now);

  /// Whole-fleet graceful drain: SIGTERM to every running worker and cancel
  /// pending restarts. Subsequent exits never restart (they count as clean
  /// exits when status is 0, crashes otherwise).
  void Drain();

  /// Blocks until every worker has exited or `grace_ms` elapsed, then
  /// SIGKILLs and reaps stragglers. Returns the number of stragglers killed.
  int WaitAll(int grace_ms);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const WorkerStatus& status(int i) const { return workers_[i].status; }
  const WorkerSpec& spec(int i) const { return workers_[i].spec; }
  pid_t pid(int i) const { return workers_[i].status.pid; }
  /// Last port read from the worker's port file; 0 when unknown.
  int port(int i) const { return workers_[i].port; }

  SupervisorMetrics metrics() const;

  /// True when no worker is running or scheduled to run.
  bool AllSettled() const;

 private:
  struct Worker {
    WorkerSpec spec;
    WorkerStatus status;
    CrashLoopBreaker breaker;
    int port = 0;               ///< Cached from spec.port_file.
    int64_t last_probe_at = 0;  ///< Tick of the last health probe.
  };

  bool Spawn(Worker* w, int64_t now);
  /// Handles a reaped exit status for `w` at tick `now`.
  void HandleExit(Worker* w, int wait_status, int64_t now);
  /// One health round trip; true = the worker answered "ok health ...".
  bool Probe(Worker* w);

  std::vector<Worker> workers_;
  SupervisorConfig config_;
  bool draining_ = false;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_SUPERVISOR_H_
