#ifndef LHMM_SRV_DEGRADE_H_
#define LHMM_SRV_DEGRADE_H_

#include <cstdint>

namespace lhmm::srv {

/// One pressure observation, sampled by MatchServer::Tick between two ticks.
/// All fields are windowed deltas or instantaneous gauges read on the
/// producer thread.
struct PressureSample {
  int64_t queue_depth = 0;      ///< Events queued across live sessions now.
  int64_t shed = 0;             ///< Admission sheds since the last sample.
  int64_t route_failures = 0;   ///< Injected/observed route failures since last.
  int64_t rejected_pushes = 0;  ///< Engine backpressure rejects since last.
};

/// Thresholds that classify a PressureSample as overloaded, plus the
/// hysteresis that turns classifications into tier moves.
struct DegradeConfig {
  /// A sample is overloaded when any of these trips (0 disables a signal).
  int64_t overload_queue_depth = 0;
  int64_t overload_shed = 0;
  int64_t overload_route_failures = 0;
  int64_t overload_rejected_pushes = 0;
  /// Consecutive overloaded samples before stepping one tier down.
  int downgrade_after = 2;
  /// Consecutive calm samples before stepping one tier back up.
  int recover_after = 4;
};

/// The deterministic degrade ladder: tier 0 is the full-quality matcher
/// (LHMM) and higher tiers are progressively cheaper fallbacks (IVMM, STM).
/// Observe() classifies each pressure sample against the thresholds and moves
/// at most one tier per sample, with hysteresis in both directions so the
/// ladder cannot flap. The active tier is a pure function of the observed
/// sample sequence — no wall time, no randomness — so a replayed load trace
/// reproduces the exact same downgrade/recovery points.
class DegradeLadder {
 public:
  DegradeLadder(int num_tiers, const DegradeConfig& config);

  /// Feeds one sample; returns the active tier after the update.
  int Observe(const PressureSample& sample);

  int tier() const { return tier_; }
  int num_tiers() const { return num_tiers_; }
  int64_t downgrades() const { return downgrades_; }
  int64_t upgrades() const { return upgrades_; }

  /// True when `sample` trips any enabled overload threshold.
  bool IsOverloaded(const PressureSample& sample) const;

  /// Forces the tier (drain/restore uses this to resume where it left off).
  void ForceTier(int tier);

 private:
  int num_tiers_;
  DegradeConfig config_;
  int tier_ = 0;
  int hot_streak_ = 0;   ///< Consecutive overloaded samples.
  int calm_streak_ = 0;  ///< Consecutive calm samples.
  int64_t downgrades_ = 0;
  int64_t upgrades_ = 0;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_DEGRADE_H_
