#include "srv/watchdog.h"

namespace lhmm::srv {

std::vector<int64_t> Watchdog::Observe(int64_t now,
                                       const std::vector<Heartbeat>& beats) {
  std::vector<int64_t> wedged;
  if (config_.stall_ticks <= 0) return wedged;

  std::unordered_map<int64_t, Track> next;
  next.reserve(beats.size());
  for (const Heartbeat& hb : beats) {
    auto it = tracks_.find(hb.session);
    Track track;
    if (it == tracks_.end() || it->second.processed != hb.processed) {
      // New session or progress since last tick: restart the stall window.
      track.processed = hb.processed;
      track.since = now;
    } else {
      track = it->second;
    }
    // A stall only counts while work is actually queued: an idle session
    // with an empty inbox is waiting for its producer, not wedged — and its
    // window restarts, so a fresh push after a long idle spell cannot trip
    // the detector instantly.
    if (hb.inbox_depth == 0) track.since = now;
    if (hb.inbox_depth > 0 && now - track.since >= config_.stall_ticks) {
      wedged.push_back(hb.session);
      ++wedged_total_;
      // Forget it; the server quarantines it and it stops reporting beats.
      continue;
    }
    next.emplace(hb.session, track);
  }
  tracks_ = std::move(next);
  return wedged;
}

}  // namespace lhmm::srv
