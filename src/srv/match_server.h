#ifndef LHMM_SRV_MATCH_SERVER_H_
#define LHMM_SRV_MATCH_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/journal.h"
#include "matchers/stream_engine.h"
#include "network/faulty_router.h"
#include "srv/admission.h"
#include "srv/degrade.h"
#include "srv/disk_guard.h"
#include "srv/snapshot.h"
#include "srv/watchdog.h"

namespace lhmm::srv {

/// One rung of the degrade ladder: a display name ("LHMM", "IVMM", "STM") and
/// the factory that clones its matcher. Tier 0 is full quality; higher tiers
/// are progressively cheaper fallbacks.
struct TierSpec {
  std::string name;
  matchers::MatcherFactory factory;
};

/// Where and how a server persists itself for crash recovery: one directory
/// holding the write-ahead journal segments (wal-*.seg) and rotated snapshot
/// generations (snapshot-*.snap).
struct DurabilityConfig {
  std::string dir;
  io::JournalOptions journal;
  /// Snapshot generations kept after a checkpoint (>= 1). Older generations
  /// are deleted; recovery falls back from a corrupt newest generation to the
  /// next one, so keeping 2+ is what makes a torn/corrupt snapshot survivable.
  int keep_snapshots = 2;
  /// Syscall boundary for every durable write (journal, snapshots). nullptr =
  /// io::Env::Default(); tests inject an io::FaultEnv. Also used as
  /// journal.env when that is unset.
  io::Env* env = nullptr;
  /// Disk-space watermarks driving the degraded-nondurable state machine.
  DiskGuardConfig disk_guard;
};

struct ServerConfig {
  /// The shared StreamEngine under the server (threads, lag, backpressure,
  /// TTL). Its shared_router may be a FaultyRouter to inject faults.
  matchers::StreamEngineConfig engine;
  AdmissionConfig admission;
  DegradeConfig degrade;
  WatchdogConfig watchdog;
  /// Deadline armed on every session at open, in logical ticks from the
  /// current clock; 0 = no default deadline. Clients may override per session
  /// with SetDeadline.
  int64_t default_deadline_ticks = 0;
  /// Optional fault-signal source for the degrade ladder: when set, injected
  /// route failures observed between ticks count as pressure. Usually the
  /// same FaultyRouter installed as engine.shared_router.
  network::FaultyRouter* fault_signal = nullptr;
};

/// Aggregate serving counters, all producer-side.
struct ServerMetrics {
  int64_t opens_admitted = 0;
  int64_t opens_shed = 0;
  int64_t pushes_admitted = 0;
  int64_t pushes_shed = 0;      ///< Refused by admission (typed rejects).
  int64_t pushes_rejected = 0;  ///< Refused by the engine (validation/backpressure).
  int64_t expired_sessions = 0;
  int64_t quarantined_sessions = 0;
  int64_t evicted_sessions = 0;
  int64_t downgrades = 0;
  int64_t upgrades = 0;
  int active_tier = 0;
  int64_t live_sessions = 0;
  int64_t queue_depth = 0;
  int64_t clock = 0;
  /// Live sessions skipped by the last Checkpoint() because their matcher
  /// family is not checkpointable (they keep serving but are not crash-durable).
  int64_t sessions_not_durable = 0;
};

/// Durability state a durable server publishes (the `status` verb of
/// lhmm_serve reports these). All zero when durability is disabled.
struct DurabilityStatus {
  bool enabled = false;
  int64_t journal_segments = 0;
  int64_t journal_bytes = 0;
  /// Highest journal record index written and flushed per the fsync policy.
  int64_t last_durable_index = 0;
  /// Clock value of the last tick record flushed to the journal (under
  /// FsyncPolicy::kNone this means "handed to the OS", not on stable storage).
  int64_t last_durable_tick = 0;
  /// Newest snapshot generation written by Checkpoint(); 0 before the first.
  int snapshot_generation = 0;
  /// Events applied but not journaled because the journal write failed, plus
  /// tick-commit failures. Non-zero means recovery may not cover everything
  /// the server acknowledged — alert on it.
  int64_t journal_errors = 0;
  /// True while the server is explicitly serving without durability: the
  /// disk guard tripped (or the journal wedged / kept failing) and
  /// journaling is suspended until space frees and a fresh checkpoint
  /// succeeds. Under FsyncPolicy::kEveryRecord, pushes in this state are
  /// acked with kDataLoss so clients know the promise is off.
  bool degraded_nondurable = false;
  /// Times the server entered / left degraded-nondurable mode.
  int64_t degraded_entered = 0;
  int64_t degraded_exited = 0;
  /// Events applied while degraded and therefore never journaled. They are
  /// covered by the checkpoint that exits degraded mode, but a crash inside
  /// the window (or a fallback to an older snapshot generation) loses them.
  int64_t events_not_journaled = 0;
  /// Failed commits survived by sealing the tail segment and rotating.
  int64_t journal_seal_events = 0;
  /// True once the journal could not even repair a failed commit; the server
  /// stays degraded-nondurable until restarted.
  bool journal_wedged = false;
  /// Last free-space sample the disk guard saw (-1 before the first).
  int64_t disk_free_bytes = -1;
};

/// The serving front end over matchers::StreamEngine: what turns the matching
/// library into something that survives production traffic. Layers, outermost
/// first:
///
///  1. Admission control (srv::AdmissionController) — token-bucket rate
///     limits and queue-depth load shedding decide *before* any work is
///     queued. Refusals are typed Statuses (kResourceExhausted /
///     kUnavailable), never silent drops.
///  2. Deadlines — every session can carry an absolute logical-clock
///     deadline; when Tick passes it the session is closed through the
///     engine's normal flush path, so Committed() still returns the partial
///     prefix and SessionStatus() reports kDeadlineExceeded.
///  3. Degrade ladder (srv::DegradeLadder) — under sustained overload or
///     injected route failures, new sessions are opened with progressively
///     cheaper matcher tiers (LHMM -> IVMM -> STM) and recover when pressure
///     clears. The active tier is published via active_tier()/metrics().
///  4. Watchdog (srv::Watchdog) — wedged session pumps (queued events, no
///     heartbeat progress) are quarantined through the engine's SessionError
///     path so the rest of the fleet keeps serving.
///  5. Drain/restore — Drain() checkpoints every live session to a versioned
///     snapshot file; Restore() brings up a server that resumes those
///     sessions with byte-identical continued output.
///  6. Crash durability (EnableDurability) — every externally visible event
///     (open/push/finish/deadline/tick) is appended to an io::JournalWriter
///     after it is applied, and Checkpoint() writes rotated snapshot
///     generations then compacts the journal behind them. srv::Recover()
///     rebuilds a kill -9'd server from newest-valid-snapshot + journal
///     suffix; because replay applies a prefix of the original event order,
///     the recovered committed output is byte-identical to an uninterrupted
///     run (see src/srv/recovery.h for the full argument and caveats).
///
/// Threading contract: all methods are producer-side (one thread, or
/// externally synchronized), exactly like StreamEngine; worker parallelism
/// lives inside the engine. Every control decision (admission, deadline,
/// tier, quarantine) is made on the producer thread from producer state, so
/// token-bucket shedding, expiry, and tier moves are deterministic across
/// thread counts; only queue-depth shedding is load-dependent (see
/// AdmissionConfig).
class MatchServer {
 public:
  /// `tiers` must be non-empty; tier 0 is the default (full-quality) tier.
  MatchServer(std::vector<TierSpec> tiers, const ServerConfig& config);
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Admits and opens a session at the active degrade tier. Typed failures:
  /// kUnavailable (draining or session limit), kResourceExhausted (rate
  /// limit), kUnimplemented (the tier's family has no streaming form).
  core::Result<int64_t> OpenSession();

  /// Admits and enqueues one point. Typed failures: kUnavailable (draining /
  /// overload), kResourceExhausted (rate limit), kDeadlineExceeded (session
  /// expired; Committed() holds the partial prefix), kInvalidArgument
  /// (malformed point), kFailedPrecondition (closed session).
  core::Status Push(int64_t id, const traj::TrajPoint& point);

  /// Ends a session's stream; its committed path becomes final.
  core::Status Finish(int64_t id);

  /// Arms (0 disarms) an absolute logical-clock deadline on a live session.
  core::Status SetDeadline(int64_t id, int64_t deadline_tick);

  /// The server's heartbeat: advances the logical clock, refills admission
  /// buckets, expires deadlines, runs the watchdog over session heartbeats,
  /// samples pressure, and moves the degrade ladder. Call at a steady cadence
  /// (the tick is the server's only notion of time).
  void Tick(int64_t now);

  /// Blocks until every enqueued event is processed (engine barrier).
  void Barrier();

  int64_t num_sessions() const;
  matchers::SessionState state(int64_t id) const;
  bool finished(int64_t id) const;

  /// The session's serving status: OK for live/finished sessions, otherwise
  /// the typed reason it stopped (kDeadlineExceeded with partial results,
  /// kUnavailable for quarantine/eviction/non-restored, or the pump error).
  core::Status SessionStatus(int64_t id) const;

  const std::vector<network::SegmentId>& Committed(int64_t id) const;
  matchers::SessionStats Stats(int64_t id) const;

  /// Events the session's pump has fully processed (lock-free; safe to poll
  /// while the pump runs). 0 for sessions without a live engine slot.
  int64_t ProcessedEvents(int64_t id) const;

  /// The degrade tier this session was opened at.
  int session_tier(int64_t id) const;
  const std::string& tier_name(int tier) const { return tiers_[tier].name; }

  int active_tier() const { return ladder_.tier(); }
  const std::string& active_tier_name() const {
    return tiers_[ladder_.tier()].name;
  }
  int64_t clock() const { return clock_; }
  bool draining() const { return draining_; }

  ServerMetrics metrics() const;

  /// Graceful drain: stops admitting (subsequent opens/pushes fail with
  /// kUnavailable "draining"), flushes every inbox, checkpoints every live
  /// session, and writes the versioned snapshot to `path` atomically. Live
  /// sessions whose family cannot checkpoint are finished instead (their
  /// output is final, not resumable). The server stays queryable afterwards.
  /// On failure no state changes: the server resumes serving (draining()
  /// stays false, every session stays open), so the caller can retry with a
  /// writable path or fall through to its shutdown drain.
  core::Status Drain(const std::string& path);

  /// Brings up a server from a Drain() snapshot: every checkpointed session
  /// is reopened at its original tier and resumes with byte-identical
  /// continued output; session ids are preserved. Ids that were not
  /// resumable report kUnavailable from SessionStatus().
  static core::Result<std::unique_ptr<MatchServer>> Restore(
      const std::string& path, std::vector<TierSpec> tiers,
      const ServerConfig& config);

  /// Restore() from an already-loaded snapshot (srv::Recover loads it with
  /// generation fallback before calling this). `origin` names the snapshot's
  /// source file for error messages.
  static core::Result<std::unique_ptr<MatchServer>> FromSnapshot(
      const ServerSnapshot& snap, std::vector<TierSpec> tiers,
      const ServerConfig& config, const std::string& origin);

  /// Turns on crash durability: opens (and repairs, after a crash) the
  /// write-ahead journal in `config.dir` and starts journaling every
  /// externally visible event. Precondition: any records already in the
  /// journal are already applied to this server — true for a fresh directory
  /// and for a server built by srv::Recover(), which replays them first.
  /// Calling it on some other populated directory double-applies history.
  core::Status EnableDurability(const DurabilityConfig& config);

  bool durable() const { return journal_ != nullptr; }
  DurabilityStatus durability_status() const;

  /// Live checkpoint (durable servers only): flushes the journal, barriers
  /// the engine, snapshots every live checkpointable session WITHOUT closing
  /// anything, writes the next snapshot generation atomically, prunes
  /// generations beyond keep_snapshots, and compacts journal segments the new
  /// snapshot covers. Sessions whose family cannot checkpoint keep serving
  /// but are not crash-durable (counted in metrics().sessions_not_durable).
  /// Refused with a typed kUnavailable while the server is
  /// degraded-nondurable: a checkpoint taken on a full disk would fail half
  /// way at best, and pretending to checkpoint is exactly the lie the
  /// degraded state exists to avoid (recovery exits the state internally).
  core::Status Checkpoint();

  /// True while serving without durability after resource exhaustion; see
  /// DurabilityStatus::degraded_nondurable.
  bool degraded_nondurable() const { return degraded_nondurable_; }

  /// Replay entry points used by srv::Recover() to re-apply journaled events
  /// after a crash. They bypass admission, the degrade ladder, and default
  /// deadlines armed from the current clock (the journal already recorded the
  /// admitted outcome: the open's tier, the deadline's absolute tick), never
  /// journal, and wait out inbox backpressure — a journaled event was
  /// accepted once, so replay must accept it too. ReplayOpen checks that ids
  /// come back dense in recorded order (kInternal otherwise).
  core::Status ReplayOpen(int64_t id, int tier);
  core::Status ReplayPush(int64_t id, const traj::TrajPoint& point);
  core::Status ReplayFinish(int64_t id);
  core::Status ReplaySetDeadline(int64_t id, int64_t deadline_tick);
  void ReplayTick(int64_t now);

 private:
  struct Sess {
    matchers::SessionId engine_id = -1;
    int tier = 0;
    bool open = false;     ///< Server-side: still accepting pushes.
    bool missing = false;  ///< Existed pre-drain but was not restored.
  };

  /// Total queued events across sessions with a live engine slot.
  int64_t QueueDepth() const;
  const Sess& sess(int64_t id) const;

  /// Captures clock/tier/id-space plus a checkpoint of every live session
  /// (engine must be quiescent — callers barrier first). Non-destructive.
  /// Sessions whose family cannot checkpoint go to `unsupported` instead.
  core::Result<ServerSnapshot> CaptureSnapshot(
      std::vector<int64_t>* unsupported);
  /// Appends one event line to the journal when durability is on. The event
  /// has already been applied, so the server stays live on failure; but
  /// under FsyncPolicy::kEveryRecord a failed append/fsync (or a suspended
  /// journal in degraded-nondurable mode) broke the per-record durability
  /// promise for this event, and the caller gets a typed kDataLoss status
  /// to forward as the ack.
  core::Status JournalAppend(const std::string& line);
  /// Samples the disk guard (statvfs via the Env) and applies its
  /// transitions; also forces degraded mode on journal wedge or a streak of
  /// failed tick-commits, and attempts restoration once conditions clear.
  void UpdateDiskGuard();
  /// Flips into degraded-nondurable mode (idempotent).
  void EnterDegraded(const std::string& why);
  /// Leaves degraded-nondurable mode by taking a fresh checkpoint that
  /// covers the un-journaled window. No-op (stays degraded) on failure.
  void TryRestoreDurability();
  /// Checkpoint() without the degraded-mode refusal (the restore path).
  core::Status DoCheckpoint();
  /// Deletes snapshot generations older than the newest keep_snapshots.
  void PruneSnapshots();

  std::vector<TierSpec> tiers_;
  ServerConfig config_;
  std::unique_ptr<matchers::StreamEngine> engine_;
  AdmissionController admission_;
  DegradeLadder ladder_;
  Watchdog watchdog_;
  bool draining_ = false;
  int64_t clock_ = 0;
  std::vector<Sess> sessions_;
  int64_t opens_admitted_ = 0;
  int64_t pushes_admitted_ = 0;
  /// Deltas for pressure sampling.
  int64_t last_route_failures_ = 0;
  int64_t last_rejected_pushes_ = 0;
  /// Crash durability (null/zero until EnableDurability).
  std::unique_ptr<io::JournalWriter> journal_;
  DurabilityConfig durability_;
  io::Env* env_ = nullptr;  ///< Resolved durability Env (never null after
                            ///< EnableDurability).
  std::unique_ptr<DiskGuard> disk_guard_;
  int64_t last_durable_tick_ = 0;
  int snapshot_gen_ = 0;
  int64_t sessions_not_durable_ = 0;
  int64_t journal_errors_ = 0;
  bool degraded_nondurable_ = false;
  int64_t degraded_entered_ = 0;
  int64_t degraded_exited_ = 0;
  int64_t events_not_journaled_ = 0;
  int commit_fail_streak_ = 0;  ///< Consecutive failed tick-commits.
};

/// Path of snapshot generation `gen` inside the durability directory
/// (snapshot-<gen 6-digit>.snap).
std::string SnapshotGenPath(const std::string& dir, int gen);

/// Snapshot generations present in `dir`, ascending. In-progress ".tmp"
/// files and anything else are ignored.
std::vector<int> ListSnapshotGenerations(const std::string& dir);

}  // namespace lhmm::srv

#endif  // LHMM_SRV_MATCH_SERVER_H_
