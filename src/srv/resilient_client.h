#ifndef LHMM_SRV_RESILIENT_CLIENT_H_
#define LHMM_SRV_RESILIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/status.h"

namespace lhmm::srv {

struct ResilientClientConfig {
  /// Path of the worker's atomic --port-file. Re-read on every reconnect:
  /// a restarted worker listens on a fresh ephemeral port, and the port file
  /// is the one address that survives the restart.
  std::string port_file;
  /// Connection attempts per Connect() / per Cmd() retry loop before the
  /// typed give-up.
  int max_attempts = 10;
  /// Backoff before reconnect attempt k: min(base << k, cap) milliseconds.
  int backoff_base_ms = 10;
  int backoff_cap_ms = 400;
  /// SO_RCVTIMEO/SO_SNDTIMEO on the connection: a wedged (but accepting)
  /// worker surfaces as a typed kIoError instead of a hang.
  int io_timeout_ms = 2000;
};

/// A frame-protocol client that survives worker restarts. The failover
/// contract mirrors the durability contract on the server side:
///
///  - Cmd() is for idempotent verbs (status, committed, health, tick …): on
///    any transport failure it reconnects — re-reading the port file, with
///    bounded exponential backoff — and retries the whole round trip, up to
///    max_attempts, then gives up with a typed kUnavailable.
///  - TryCmd() is one attempt on the current connection, no retry. It exists
///    for non-idempotent verbs (push): when the connection dies between write
///    and read, the client cannot know whether the worker acked — the caller
///    must resolve the ambiguity itself via `status <id>` (`pushed=`) after
///    reconnecting, exactly like the crash-gauntlet resume path.
///
/// Single-threaded: one client per driving thread.
class ResilientClient {
 public:
  explicit ResilientClient(ResilientClientConfig config);
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Ensures a live connection, dialing (with backoff) if needed. Typed
  /// kUnavailable when the retry budget runs out.
  core::Status Connect();

  /// One request/response round trip on the current connection; no implicit
  /// reconnect, no retry. Any failure closes the connection so the next
  /// Connect() dials fresh.
  core::Result<std::string> TryCmd(std::string_view line);

  /// Round trip with reconnect + bounded retry. Only for idempotent verbs.
  core::Result<std::string> Cmd(std::string_view line);

  bool connected() const { return fd_ >= 0; }
  void CloseConn();

  /// Raw connection fd (test hook: the fleet gauntlet writes a deliberately
  /// partial frame here before SIGKILLing the peer); -1 when not connected.
  int fd() const { return fd_; }

  /// Successful dials after the first (how often failover actually happened).
  int64_t reconnects() const { return reconnects_; }
  /// Port of the current/last connection; 0 before the first dial.
  int port() const { return port_; }

 private:
  /// One dial attempt: read port file, connect, set timeouts.
  core::Status DialOnce();

  ResilientClientConfig config_;
  int fd_ = -1;
  int port_ = 0;
  int64_t dials_ = 0;
  int64_t reconnects_ = 0;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_RESILIENT_CLIENT_H_
