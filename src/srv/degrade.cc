#include "srv/degrade.h"

#include <algorithm>

#include "core/logging.h"

namespace lhmm::srv {

DegradeLadder::DegradeLadder(int num_tiers, const DegradeConfig& config)
    : num_tiers_(num_tiers), config_(config) {
  CHECK_GE(num_tiers, 1);
  CHECK_GE(config_.downgrade_after, 1);
  CHECK_GE(config_.recover_after, 1);
}

bool DegradeLadder::IsOverloaded(const PressureSample& sample) const {
  if (config_.overload_queue_depth > 0 &&
      sample.queue_depth >= config_.overload_queue_depth) {
    return true;
  }
  if (config_.overload_shed > 0 && sample.shed >= config_.overload_shed) {
    return true;
  }
  if (config_.overload_route_failures > 0 &&
      sample.route_failures >= config_.overload_route_failures) {
    return true;
  }
  if (config_.overload_rejected_pushes > 0 &&
      sample.rejected_pushes >= config_.overload_rejected_pushes) {
    return true;
  }
  return false;
}

int DegradeLadder::Observe(const PressureSample& sample) {
  if (IsOverloaded(sample)) {
    calm_streak_ = 0;
    ++hot_streak_;
    if (hot_streak_ >= config_.downgrade_after && tier_ < num_tiers_ - 1) {
      ++tier_;
      ++downgrades_;
      hot_streak_ = 0;
    }
  } else {
    hot_streak_ = 0;
    ++calm_streak_;
    if (calm_streak_ >= config_.recover_after && tier_ > 0) {
      --tier_;
      ++upgrades_;
      calm_streak_ = 0;
    }
  }
  return tier_;
}

void DegradeLadder::ForceTier(int tier) {
  CHECK_GE(tier, 0);
  CHECK_LT(tier, num_tiers_);
  tier_ = tier;
  hot_streak_ = 0;
  calm_streak_ = 0;
}

}  // namespace lhmm::srv
