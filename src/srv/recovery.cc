#include "srv/recovery.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "io/journal.h"
#include "srv/journal_events.h"
#include "srv/snapshot.h"

namespace lhmm::srv {

namespace {

/// Replays every scanned record with index > snap.journal_pos into `server`.
/// Fails only on inconsistencies that invalidate the snapshot candidate (a
/// gap between the snapshot's coverage and the surviving journal, an open
/// whose id does not line up); per-event skips are counted, not fatal.
core::Status ReplayJournal(const io::JournalScan& scan,
                           const ServerSnapshot& snap, MatchServer* server,
                           RecoveryReport* report) {
  const int64_t replay_start = snap.journal_pos + 1;
  if (!scan.records.empty() && scan.records.back().index >= replay_start &&
      scan.records.front().index > replay_start) {
    // The journal's surviving records start past what this snapshot covers:
    // the records in between were compacted away on behalf of a newer
    // snapshot, so this candidate cannot reproduce them.
    return core::Status::FailedPrecondition(
        "journal starts at record " +
        std::to_string(scan.records.front().index) +
        " but the snapshot only covers through " +
        std::to_string(snap.journal_pos));
  }
  for (const io::JournalRecord& rec : scan.records) {
    if (rec.index < replay_start) continue;
    core::Result<JournalEvent> ev = ParseJournalEvent(rec.payload);
    if (!ev.ok()) {
      // The payload CRC matched but the line does not parse (version skew or
      // a writer bug). Stop at the valid prefix, like framing corruption.
      if (report->journal_corruption.empty()) {
        report->journal_corruption =
            "record " + std::to_string(rec.index) + ": " +
            ev.status().message();
      }
      break;
    }
    ++report->journal_replayed;
    core::Status st;
    switch (ev->kind) {
      case JournalEvent::Kind::kOpen:
        st = server->ReplayOpen(ev->id, ev->tier);
        // An open that does not line up means snapshot and journal disagree
        // about history — reject the candidate, don't serve wrong state.
        if (!st.ok()) return st;
        break;
      case JournalEvent::Kind::kPush:
        st = server->ReplayPush(ev->id, ev->point);
        if (!st.ok()) ++report->replay_skipped;
        break;
      case JournalEvent::Kind::kFinish:
        st = server->ReplayFinish(ev->id);
        if (!st.ok()) ++report->replay_skipped;
        break;
      case JournalEvent::Kind::kDeadline:
        st = server->ReplaySetDeadline(ev->id, ev->tick);
        if (!st.ok()) ++report->replay_skipped;
        break;
      case JournalEvent::Kind::kTick:
        server->ReplayTick(ev->tick);
        break;
    }
  }
  server->Barrier();
  return core::Status::Ok();
}

}  // namespace

core::Result<std::unique_ptr<MatchServer>> Recover(
    std::vector<TierSpec> tiers, const ServerConfig& config,
    const DurabilityConfig& durability, RecoveryReport* report) {
  RecoveryReport local;
  if (report == nullptr) report = &local;
  *report = RecoveryReport{};
  if (durability.dir.empty()) {
    return core::Status::InvalidArgument("durability dir is empty");
  }
  {
    std::error_code ec;
    std::filesystem::create_directories(durability.dir, ec);
    if (ec) {
      return core::Status::IoError("cannot create " + durability.dir + ": " +
                                   ec.message());
    }
  }

  core::Result<io::JournalScan> scan = io::ScanJournal(durability.dir, true);
  if (!scan.ok()) return scan.status();
  report->journal_records = static_cast<int64_t>(scan->records.size());
  report->journal_torn_tail = scan->torn_tail;
  if (!scan->clean) report->journal_corruption = scan->corruption.message();

  // Candidate snapshots, newest generation first; a fresh (empty) snapshot is
  // the final fallback, valid only when the journal still starts at record 1.
  std::vector<int> gens = ListSnapshotGenerations(durability.dir);
  std::sort(gens.begin(), gens.end(), std::greater<int>());

  std::unique_ptr<MatchServer> server;
  for (size_t i = 0; i <= gens.size(); ++i) {
    const bool fresh = i == gens.size();
    const int gen = fresh ? 0 : gens[i];
    const std::string path =
        fresh ? "" : SnapshotGenPath(durability.dir, gen);
    ServerSnapshot snap;  // The fresh fallback: empty server, journal_pos 0.
    if (!fresh) {
      core::Result<ServerSnapshot> loaded = LoadServerSnapshot(path);
      if (!loaded.ok()) {
        report->snapshots_skipped.push_back(loaded.status().message());
        continue;
      }
      snap = std::move(loaded).value();
    }
    const int64_t replayed_before = report->journal_replayed;
    const int64_t skipped_before = report->replay_skipped;
    core::Result<std::unique_ptr<MatchServer>> candidate =
        MatchServer::FromSnapshot(snap, tiers, config,
                                  fresh ? "(fresh)" : path);
    core::Status st = candidate.ok()
                          ? ReplayJournal(*scan, snap, candidate->get(), report)
                          : candidate.status();
    if (!st.ok()) {
      report->journal_replayed = replayed_before;
      report->replay_skipped = skipped_before;
      report->snapshots_skipped.push_back(
          (fresh ? std::string("(fresh)") : path) + ": " + st.message());
      continue;
    }
    report->snapshot_path = path;
    report->snapshot_generation = gen;
    server = std::move(candidate).value();
    break;
  }
  if (server == nullptr) {
    std::string why;
    for (const std::string& s : report->snapshots_skipped) {
      why += "\n  " + s;
    }
    return core::Status::IoError("no usable snapshot generation in " +
                                 durability.dir + ":" + why);
  }

  // Re-arm durability (repairing the journal's torn/corrupt tail on disk) and
  // checkpoint immediately: the next crash replays from here, and new journal
  // records can never be mistaken for the pre-repair history they replace.
  LHMM_RETURN_IF_ERROR(server->EnableDurability(durability));
  LHMM_RETURN_IF_ERROR(server->Checkpoint());
  return server;
}

}  // namespace lhmm::srv
