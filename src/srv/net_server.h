#ifndef LHMM_SRV_NET_SERVER_H_
#define LHMM_SRV_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/env.h"
#include "srv/frame.h"
#include "srv/match_server.h"
#include "store/control.h"

namespace lhmm::srv {

/// Knobs shared by every transport that dispatches protocol lines.
struct CommandOptions {
  /// Durable servers: write a snapshot + compact the journal every N ticks
  /// (0 = only via the checkpoint verb and at shutdown).
  int checkpoint_every = 0;
  /// Attached versioned asset store, when the server runs in mapped mode
  /// (lhmm_serve --store). Enables the swap/rollback verbs and the store_*
  /// status fields; nullptr = owned mode (those verbs reject typed). The
  /// pointer is borrowed and must outlive the processor.
  store::StoreControl* store = nullptr;
};

/// Dispatches one line of the serve protocol (the verbs documented atop
/// tools/lhmm_serve.cc) against a MatchServer and renders the one-line
/// response. The stdin loop and the TCP transport both run every verb through
/// this class, so the two paths answer byte-identically by construction —
/// the socket tests then prove it end to end.
///
/// Threading contract: producer-side, exactly like MatchServer.
class CommandProcessor {
 public:
  explicit CommandProcessor(MatchServer* server,
                            const CommandOptions& options = {});

  /// Handles `line` and writes the response (no trailing newline) to
  /// `*response`. Returns false when the line produces no response: blank
  /// lines, '#' comments, and the quit verb (which sets *quit instead).
  /// Refusals are typed "err <Code> <message>" responses, never a dropped
  /// request.
  bool Process(const std::string& line, std::string* response, bool* quit);

 private:
  MatchServer* server_;
  CommandOptions options_;
  /// Process start proxy for the pid verb's uptime= field; per-processor so
  /// both transports of one process report from the same epoch second.
  std::chrono::steady_clock::time_point start_;
};

/// Configuration of the TCP front end.
struct NetServerConfig {
  /// Numeric listen address; "0.0.0.0" binds every interface.
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; NetServer::port() reports the bound one.
  int port = 0;
  int backlog = 128;
  /// Request frames above this are rejected with a typed err frame and the
  /// connection is closed (framing is unrecoverable past a bad header).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection write-queue backpressure: while a connection's unsent
  /// response bytes exceed this (a slow or stopped reader), further requests
  /// from it are answered with "err ResourceExhausted ..." instead of being
  /// processed — the same typed-reject contract as srv::Admission, one layer
  /// out. Queue growth stays bounded by the client's own send rate because a
  /// shed request costs one small err frame and no server work.
  size_t max_write_queue_bytes = 4u << 20;
  /// Connections with no complete request for this many logical ticks are
  /// reaped (half-open peers, idle keepalives). Rides the server's existing
  /// idle-TTL clock: only `tick` verbs advance time. 0 = never reap.
  int64_t conn_idle_ttl = 0;
  /// Poll timeout: the cadence at which the loop re-checks its stop flag
  /// when no socket is ready.
  int poll_interval_ms = 100;
  /// Test hook: SO_SNDBUF for accepted sockets (0 = kernel default). Small
  /// values make write-queue backpressure reachable with little traffic.
  int so_sndbuf = 0;
  /// SO_REUSEPORT on the listener: N lhmm_serve processes can bind the same
  /// port and let the kernel spread incoming connections across the fleet
  /// (lhmm_fleet --reuseport). Per-worker ports via --port-file remain the
  /// fallback where a client must address one specific worker.
  bool reuse_port = false;
  /// Syscall boundary for accept(2); nullptr = io::Env::Default(). Tests
  /// inject an io::FaultEnv here to script EMFILE storms without actually
  /// starving the process of descriptors.
  io::Env* env = nullptr;
};

/// Counters published by NetServer. Written only by the Run loop; read them
/// after Run returns (tests join the serving thread first).
struct NetMetrics {
  int64_t accepted = 0;
  int64_t closed = 0;            ///< All closes, any reason.
  int64_t frames_in = 0;         ///< Complete request frames decoded.
  int64_t frames_out = 0;        ///< Response frames queued (incl. rejects).
  int64_t frames_shed = 0;       ///< Typed write-queue backpressure rejects.
  int64_t codec_errors = 0;      ///< Connections dropped for bad framing.
  int64_t reaped_idle = 0;       ///< Connections reaped by the idle TTL.
  int64_t peer_disconnects = 0;  ///< Peer closed/reset, incl. mid-frame.
  int64_t accepted_shed = 0;     ///< Accepted-then-closed under fd pressure.
  int64_t accept_failures = 0;   ///< accept(2) errors other than a drained
                                 ///< backlog (EMFILE with no shed possible,
                                 ///< ECONNABORTED, ...).
  int64_t poll_wakeups = 0;      ///< Run-loop iterations; an fd-starved
                                 ///< server must NOT show this spinning.
};

/// The TCP transport of the serving stack: a poll-driven accept loop
/// multiplexing every connection on the producer thread. One request frame in
/// → one response frame out, in order, per connection; all verbs funnel
/// through CommandProcessor into the single MatchServer, so the producer-side
/// determinism contract is untouched — worker parallelism stays inside the
/// StreamEngine.
///
/// Lifecycle: Listen() binds, Run() serves until the stop flag goes true
/// (lhmm_serve's SIGTERM/SIGINT handler sets it) or a client sends the quit
/// verb; either way the loop stops accepting, flushes every queued response,
/// closes all connections, and returns — the caller then runs the usual
/// checkpoint/drain shutdown. Abrupt peer disconnects (including mid-frame)
/// free the connection without disturbing any other; sessions are server
/// state, not connection state, so a reconnecting client can resume by id.
class NetServer {
 public:
  NetServer(MatchServer* server, const CommandOptions& cmd_options,
            const NetServerConfig& config);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds and listens on config.host:config.port. After OK, port() is the
  /// bound port (resolving an ephemeral 0).
  core::Status Listen();
  int port() const { return port_; }

  /// Serves until `stop` goes true or a quit verb arrives. Requires a prior
  /// successful Listen().
  core::Status Run(const std::atomic<bool>& stop);

  /// Valid once Run has returned.
  const NetMetrics& metrics() const { return metrics_; }

 private:
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    std::string out;       ///< Encoded response frames not yet written.
    size_t out_off = 0;    ///< Prefix of `out` already written.
    int64_t last_active = 0;  ///< Clock at the last complete request.
    bool closing = false;  ///< Flush remaining output, then close.

    explicit Conn(size_t max_frame) : decoder(max_frame) {}
    size_t pending() const { return out.size() - out_off; }
  };

  void Accept();
  /// Reads and dispatches everything available on `conn`; returns false when
  /// the connection must be dropped now (peer gone).
  bool HandleReadable(Conn* conn, bool* quit);
  /// Writes as much queued output as the socket takes; returns false when the
  /// connection is finished (flushed a closing conn, or the peer is gone).
  bool FlushWrites(Conn* conn);
  void QueueResponse(Conn* conn, std::string_view response);
  void CloseConn(Conn* conn);

  MatchServer* server_;
  CommandProcessor processor_;
  NetServerConfig config_;
  io::Env* env_;
  int listen_fd_ = -1;
  int port_ = 0;
  /// Spare descriptor (open on /dev/null) surrendered under EMFILE so one
  /// waiting connection can be accepted and cleanly closed instead of
  /// rotting in the backlog. Re-armed after every shed.
  int reserve_fd_ = -1;
  /// While > 0 the listener is left out of the poll set (decremented once
  /// per loop round): when even the reserve-fd shed cannot make progress,
  /// pausing accepts is the only alternative to busy-spinning on a
  /// permanently-readable listen fd.
  int accept_pause_rounds_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  NetMetrics metrics_;
};

}  // namespace lhmm::srv

#endif  // LHMM_SRV_NET_SERVER_H_
