#include "srv/supervisor.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/strings.h"
#include "srv/frame.h"

namespace lhmm::srv {

namespace {

/// SplitMix64-style avalanche over (seed, key, attempt): a pure function, so
/// the jitter stream replays exactly for a given config while still spreading
/// distinct workers apart.
uint64_t JitterHash(uint64_t seed, uint64_t key, uint64_t attempt) {
  uint64_t x = seed ^ (key * 0x9e3779b97f4a7c15ULL) ^
               (attempt * 0xbf58476d1ce4e5b9ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

int64_t BackoffDelay(const BackoffConfig& config, int64_t key, int attempt) {
  int64_t delay = std::max<int64_t>(config.base_ticks, 1);
  const int64_t cap = std::max(config.cap_ticks, delay);
  // Doubling by loop instead of `base << attempt`: a long crash streak must
  // saturate at the cap, not shift into undefined behavior.
  for (int i = 0; i < attempt && delay < cap; ++i) delay *= 2;
  delay = std::min(delay, cap);
  const int64_t span = delay / 2;
  if (span <= 0) return delay;
  const uint64_t h = JitterHash(config.jitter_seed,
                                static_cast<uint64_t>(key),
                                static_cast<uint64_t>(attempt));
  return delay + static_cast<int64_t>(h % static_cast<uint64_t>(span + 1));
}

bool CrashLoopBreaker::RecordCrash(int64_t now) {
  if (config_.window_ticks <= 0) return false;
  crash_ticks_.push_back(now);
  // Strict sliding window: a crash at exactly now - window_ticks has aged out.
  while (!crash_ticks_.empty() &&
         crash_ticks_.front() <= now - config_.window_ticks) {
    crash_ticks_.pop_front();
  }
  if (static_cast<int>(crash_ticks_.size()) >= config_.max_crashes) {
    tripped_ = true;
  }
  return tripped_;
}

int CrashLoopBreaker::CrashesInWindow(int64_t now) const {
  int n = 0;
  for (const int64_t t : crash_ticks_) {
    if (t > now - config_.window_ticks) ++n;
  }
  return n;
}

void CrashLoopBreaker::Reset() {
  crash_ticks_.clear();
  tripped_ = false;
}

const char* WorkerStateName(WorkerState s) {
  switch (s) {
    case WorkerState::kIdle: return "idle";
    case WorkerState::kRunning: return "running";
    case WorkerState::kBackoff: return "backoff";
    case WorkerState::kParked: return "parked";
    case WorkerState::kExited: return "exited";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

Supervisor::Supervisor(std::vector<WorkerSpec> specs,
                       const SupervisorConfig& config)
    : config_(config) {
  workers_.reserve(specs.size());
  for (WorkerSpec& spec : specs) {
    Worker w{std::move(spec), WorkerStatus{}, CrashLoopBreaker(config.breaker)};
    workers_.push_back(std::move(w));
  }
}

Supervisor::~Supervisor() {
  for (Worker& w : workers_) {
    if (w.status.pid > 0) {
      kill(w.status.pid, SIGKILL);
      waitpid(w.status.pid, nullptr, 0);
      w.status.pid = -1;
    }
  }
}

bool Supervisor::Spawn(Worker* w, int64_t now) {
  // A stale port file would make health probes (and clients) dial a dead
  // incarnation; the worker re-publishes it atomically once it listens.
  if (!w->spec.port_file.empty()) unlink(w->spec.port_file.c_str());
  w->port = 0;
  const pid_t pid = fork();
  if (pid < 0) {
    fprintf(stderr, "supervisor: fork(%s): %s\n", w->spec.name.c_str(),
            strerror(errno));
    return false;
  }
  if (pid == 0) {
#ifdef __linux__
    // Tie the worker's life to the supervisor: a kill -9'd fleet never leaks
    // orphan servers holding ports and journal directories.
    prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
    const int devnull = open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      dup2(devnull, 0);
      close(devnull);
    }
    std::vector<char*> argv;
    argv.reserve(w->spec.argv.size() + 1);
    for (const std::string& a : w->spec.argv) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    fprintf(stderr, "supervisor: execv(%s): %s\n", argv[0], strerror(errno));
    _exit(127);
  }
  w->status.pid = pid;
  w->status.state = WorkerState::kRunning;
  w->status.started_at = now;
  w->status.health_miss_streak = 0;
  w->last_probe_at = now;
  return true;
}

core::Status Supervisor::StartAll(int64_t now) {
  int failed = 0;
  for (Worker& w : workers_) {
    if (w.status.state != WorkerState::kIdle) continue;
    if (!Spawn(&w, now)) ++failed;
  }
  if (failed > 0) {
    return core::Status::Internal(
        core::StrFormat("%d of %zu workers failed to spawn", failed,
                        workers_.size()));
  }
  return core::Status::Ok();
}

void Supervisor::HandleExit(Worker* w, int wait_status, int64_t now) {
  w->status.pid = -1;
  const bool clean = WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0;
  if (clean || draining_) {
    // During drain an abnormal exit still counts as a crash for the books,
    // but nothing restarts: the fleet is going down.
    if (clean) {
      ++w->status.clean_exits;
    } else {
      ++w->status.crashes;
    }
    w->status.state = WorkerState::kExited;
    return;
  }
  ++w->status.crashes;
  // A crash after a quiet window starts a fresh backoff ladder; a crash
  // inside the window climbs it.
  if (w->breaker.CrashesInWindow(now) == 0) w->status.attempt = 0;
  if (w->breaker.RecordCrash(now)) {
    w->status.state = WorkerState::kParked;
    fprintf(stderr,
            "supervisor: worker %s crash-looped (%" PRId64
            " crashes) — parked, fleet serving degraded\n",
            w->spec.name.c_str(), w->status.crashes);
    return;
  }
  const int64_t delay =
      BackoffDelay(config_.backoff,
                   static_cast<int64_t>(w - workers_.data()),
                   w->status.attempt);
  ++w->status.attempt;
  w->status.state = WorkerState::kBackoff;
  w->status.restart_at = now + delay;
  if (WIFSIGNALED(wait_status)) {
    fprintf(stderr,
            "supervisor: worker %s killed by signal %d; restart in %" PRId64
            " ticks (attempt %d)\n",
            w->spec.name.c_str(), WTERMSIG(wait_status), delay,
            w->status.attempt);
  } else {
    fprintf(stderr,
            "supervisor: worker %s exited %d; restart in %" PRId64
            " ticks (attempt %d)\n",
            w->spec.name.c_str(), WEXITSTATUS(wait_status), delay,
            w->status.attempt);
  }
}

bool Supervisor::Probe(Worker* w) {
  if (w->spec.port_file.empty()) return true;
  if (w->port <= 0) {
    FILE* f = fopen(w->spec.port_file.c_str(), "r");
    if (f == nullptr) return false;  // Not published (yet): a miss.
    int port = 0;
    const int got = fscanf(f, "%d", &port);
    fclose(f);
    if (got != 1 || port <= 0) return false;
    w->port = port;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  timeval tv = {};
  tv.tv_sec = config_.health_timeout_ms / 1000;
  tv.tv_usec = (config_.health_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(w->port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  bool healthy = false;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
      WriteFrame(fd, "health").ok()) {
    core::Result<std::string> resp = ReadFrame(fd);
    healthy = resp.ok() && core::StartsWith(*resp, "ok health ");
    if (healthy) {
      // Mapped-mode workers append " store=<gen>"; cache it for the fleet
      // status table (generation skew mid-rollout must be visible).
      const size_t pos = resp->find(" store=");
      if (pos != std::string::npos) {
        w->status.store_gen = atoll(resp->c_str() + pos + 7);
      }
    }
  }
  close(fd);
  return healthy;
}

int64_t ReadRssKb(pid_t pid) {
  if (pid <= 0) return -1;
  char path[64];
  snprintf(path, sizeof(path), "/proc/%d/statm", static_cast<int>(pid));
  FILE* f = fopen(path, "r");
  if (f == nullptr) return -1;
  long long size_pages = 0;
  long long rss_pages = 0;
  const int got = fscanf(f, "%lld %lld", &size_pages, &rss_pages);
  fclose(f);
  if (got != 2) return -1;
  const long page_kb = sysconf(_SC_PAGESIZE) / 1024;
  return static_cast<int64_t>(rss_pages) * page_kb;
}

void Supervisor::Poll(int64_t now) {
  for (Worker& w : workers_) {
    // 1. Reap: the exit is detected here (SIGCHLD only wakes the caller's
    // sleep; WNOHANG keeps the supervision loop non-blocking).
    if (w.status.pid > 0) {
      int wait_status = 0;
      const pid_t got = waitpid(w.status.pid, &wait_status, WNOHANG);
      if (got == w.status.pid) {
        HandleExit(&w, wait_status, now);
      } else if (got < 0 && errno == ECHILD) {
        // Someone reaped it out from under us; treat as a crash of unknown
        // cause so supervision still recovers the worker.
        HandleExit(&w, /*wait_status=*/127 << 8, now);
      }
    }
    // 2. Due restarts.
    if (w.status.state == WorkerState::kBackoff && now >= w.status.restart_at &&
        !draining_) {
      if (Spawn(&w, now)) {
        ++w.status.restarts;
        fprintf(stderr, "supervisor: worker %s restarted (pid %d)\n",
                w.spec.name.c_str(), static_cast<int>(w.status.pid));
      } else {
        // Spawn failure is a crash at `now`: backoff again (or park).
        HandleExit(&w, /*wait_status=*/127 << 8, now);
      }
    }
    // 3. Health probes: a wedged worker (live pid, no protocol answer) is
    // SIGKILLed; the kill is reaped as a crash on a later Poll, which routes
    // it through the same backoff/breaker path as any other failure.
    if (config_.health_interval_ticks > 0 && !draining_ &&
        w.status.state == WorkerState::kRunning &&
        now - w.status.started_at >= config_.health_grace_ticks &&
        now - w.last_probe_at >= config_.health_interval_ticks) {
      w.last_probe_at = now;
      if (Probe(&w)) {
        w.status.health_miss_streak = 0;
      } else if (++w.status.health_miss_streak >= config_.health_misses) {
        fprintf(stderr,
                "supervisor: worker %s failed %d health probes — SIGKILL\n",
                w.spec.name.c_str(), w.status.health_miss_streak);
        ++w.status.health_kills;
        w.status.health_miss_streak = 0;
        kill(w.status.pid, SIGKILL);
      }
    }
  }
}

void Supervisor::Drain() {
  draining_ = true;
  for (Worker& w : workers_) {
    if (w.status.pid > 0) kill(w.status.pid, SIGTERM);
    if (w.status.state == WorkerState::kBackoff) {
      w.status.state = WorkerState::kExited;  // Cancel the pending restart.
    }
  }
}

int Supervisor::WaitAll(int grace_ms) {
  const int kStepUs = 5000;
  int waited_ms = 0;
  for (;;) {
    bool any_running = false;
    for (Worker& w : workers_) {
      if (w.status.pid <= 0) continue;
      int wait_status = 0;
      const pid_t got = waitpid(w.status.pid, &wait_status, WNOHANG);
      if (got == w.status.pid || (got < 0 && errno == ECHILD)) {
        HandleExit(&w, got == w.status.pid ? wait_status : 0, waited_ms);
      } else {
        any_running = true;
      }
    }
    if (!any_running) return 0;
    if (waited_ms >= grace_ms) break;
    usleep(kStepUs);
    waited_ms += kStepUs / 1000;
  }
  int killed = 0;
  for (Worker& w : workers_) {
    if (w.status.pid <= 0) continue;
    kill(w.status.pid, SIGKILL);
    int wait_status = 0;
    waitpid(w.status.pid, &wait_status, 0);
    HandleExit(&w, wait_status, waited_ms);
    ++killed;
  }
  return killed;
}

SupervisorMetrics Supervisor::metrics() const {
  SupervisorMetrics m;
  for (const Worker& w : workers_) {
    m.restarts += w.status.restarts;
    m.crashes += w.status.crashes;
    m.clean_exits += w.status.clean_exits;
    m.health_kills += w.status.health_kills;
    if (w.status.state == WorkerState::kParked) ++m.parked;
    if (w.status.state == WorkerState::kRunning) ++m.running;
  }
  return m;
}

bool Supervisor::AllSettled() const {
  for (const Worker& w : workers_) {
    if (w.status.state == WorkerState::kRunning ||
        w.status.state == WorkerState::kBackoff) {
      return false;
    }
  }
  return true;
}

}  // namespace lhmm::srv
