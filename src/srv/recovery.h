#ifndef LHMM_SRV_RECOVERY_H_
#define LHMM_SRV_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "srv/match_server.h"

namespace lhmm::srv {

/// What Recover() found and did, for operator logs and tests.
struct RecoveryReport {
  /// Snapshot the server was rebuilt from; empty when it started fresh.
  std::string snapshot_path;
  int snapshot_generation = 0;
  /// Newer generations that were skipped (corrupt, or their journal suffix
  /// was gone), newest first, with the reason for each.
  std::vector<std::string> snapshots_skipped;
  int64_t journal_records = 0;   ///< Valid records the journal scan decoded.
  int64_t journal_replayed = 0;  ///< Records past the snapshot's journal_pos.
  /// Replayed events that no longer had a live target (their session was not
  /// checkpointable, or closed earlier in replay). Not an error: those
  /// sessions simply are not crash-durable.
  int64_t replay_skipped = 0;
  bool journal_torn_tail = false;  ///< Final segment ended mid-record.
  /// Mid-file journal corruption (file + byte offset); empty when clean.
  /// Recovery replayed the valid prefix before it.
  std::string journal_corruption;
};

/// Rebuilds a crash-durable MatchServer from `durability.dir` after a crash
/// (or cold start — an empty/missing directory yields a fresh server):
///
///  1. Load the newest snapshot generation that parses; fall back generation
///     by generation when one is corrupt or its journal suffix is missing.
///  2. Scan the write-ahead journal; a torn tail is a clean crash signature,
///     mid-file corruption truncates replay to the valid prefix (reported,
///     never fatal).
///  3. Replay every journaled event past the snapshot's journal_pos through
///     the Replay* entry points (admission bypassed, recorded tiers and
///     deadlines honored, inbox backpressure waited out).
///  4. Re-enable durability (repairing the journal tail on disk) and write a
///     fresh checkpoint, so the next crash replays from here and journal
///     record indices can never collide with pre-crash history.
///
/// Because replay applies a strict prefix of the original event order, and
/// committed output is deterministic in that order (the StreamEngine
/// contract), the recovered server's committed output and session states are
/// byte-identical to an uninterrupted run over the same events — for any
/// worker thread count. Events past the durable prefix are simply absent;
/// clients resume from Stats(id).points_pushed, exactly as they would after a
/// rolled-back group commit.
///
/// Caveats: timing-driven closures (watchdog quarantine, kDropOldest
/// backpressure) are not replay-deterministic — durable configs should avoid
/// them. After a journal corruption, falling back more than one generation
/// can be inexact (the journal cannot distinguish pre- from post-repair
/// record indices); the recovery-time checkpoint makes that window one
/// double-fault wide.
core::Result<std::unique_ptr<MatchServer>> Recover(
    std::vector<TierSpec> tiers, const ServerConfig& config,
    const DurabilityConfig& durability, RecoveryReport* report = nullptr);

}  // namespace lhmm::srv

#endif  // LHMM_SRV_RECOVERY_H_
