#include "srv/resilient_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "core/strings.h"
#include "srv/frame.h"

namespace lhmm::srv {

ResilientClient::ResilientClient(ResilientClientConfig config)
    : config_(std::move(config)) {}

ResilientClient::~ResilientClient() { CloseConn(); }

void ResilientClient::CloseConn() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

core::Status ResilientClient::DialOnce() {
  FILE* f = fopen(config_.port_file.c_str(), "r");
  if (f == nullptr) {
    return core::Status::Unavailable(
        core::StrFormat("port file %s not published",
                        config_.port_file.c_str()));
  }
  int port = 0;
  const int got = fscanf(f, "%d", &port);
  fclose(f);
  if (got != 1 || port <= 0) {
    return core::Status::Unavailable(
        core::StrFormat("port file %s unreadable", config_.port_file.c_str()));
  }
  // CLOEXEC: fleet harnesses fork workers; a client fd leaking into a worker
  // would hold its peer's connection open past the peer's death.
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return core::Status::IoError("socket() failed");
  timeval tv = {};
  tv.tv_sec = config_.io_timeout_ms / 1000;
  tv.tv_usec = (config_.io_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return core::Status::Unavailable(
        core::StrFormat("connect 127.0.0.1:%d failed", port));
  }
  fd_ = fd;
  port_ = port;
  ++dials_;
  if (dials_ > 1) ++reconnects_;
  return core::Status::Ok();
}

core::Status ResilientClient::Connect() {
  if (fd_ >= 0) return core::Status::Ok();
  core::Status last = core::Status::Unavailable("no dial attempted");
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      int64_t delay = config_.backoff_base_ms;
      for (int i = 1; i < attempt && delay < config_.backoff_cap_ms; ++i) {
        delay *= 2;
      }
      usleep(static_cast<useconds_t>(
          std::min<int64_t>(delay, config_.backoff_cap_ms) * 1000));
    }
    last = DialOnce();
    if (last.ok()) return last;
  }
  return core::Status::Unavailable(core::StrFormat(
      "gave up after %d dial attempts: %s", config_.max_attempts,
      std::string(last.message()).c_str()));
}

core::Result<std::string> ResilientClient::TryCmd(std::string_view line) {
  if (fd_ < 0) {
    return core::Result<std::string>(
        core::Status::FailedPrecondition("not connected"));
  }
  core::Status ws = WriteFrame(fd_, line);
  if (!ws.ok()) {
    CloseConn();
    return core::Result<std::string>(std::move(ws));
  }
  core::Result<std::string> resp = ReadFrame(fd_);
  if (!resp.ok()) CloseConn();
  return resp;
}

core::Result<std::string> ResilientClient::Cmd(std::string_view line) {
  core::Status last = core::Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    core::Status cs = Connect();
    if (!cs.ok()) {
      last = std::move(cs);
      break;  // Connect() already spent the dial budget.
    }
    core::Result<std::string> resp = TryCmd(line);
    if (resp.ok()) return resp;
    last = resp.status();
    // TryCmd closed the connection; the next loop iteration redials (and
    // re-reads the port file, picking up a restarted worker's new port).
  }
  return core::Result<std::string>(core::Status::Unavailable(core::StrFormat(
      "retry budget exhausted for '%.*s': %s",
      static_cast<int>(std::min<size_t>(line.size(), 32)), line.data(),
      std::string(last.message()).c_str())));
}

}  // namespace lhmm::srv
