#ifndef LHMM_EVAL_EVALUATOR_H_
#define LHMM_EVAL_EVALUATOR_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "matchers/batch_matcher.h"
#include "matchers/matcher.h"
#include "matchers/stream_engine.h"
#include "traj/filters.h"
#include "traj/trajectory.h"

namespace lhmm::eval {

/// Aggregated (macro-averaged) evaluation of one matcher over one split.
struct EvalSummary {
  std::string matcher;
  int num_trajectories = 0;
  double precision = 0.0;
  double recall = 0.0;
  double rmf = 0.0;
  double cmf50 = 0.0;
  double hitting_ratio = 0.0;  ///< Only meaningful when has_hr.
  bool has_hr = false;
  double avg_time_s = 0.0;  ///< Mean wall-clock matching time per trajectory.
  /// Mean HMM breaks survived per trajectory (MatchResult::num_breaks); 0 on
  /// healthy input.
  double mean_breaks = 0.0;
  /// Mean trajectory seconds spanned by break gaps (MatchResult::gap_seconds).
  double mean_gap_seconds = 0.0;
  /// Mean fraction of each trajectory's time span covered by unbroken
  /// matching (MatchResult::gap_coverage); 1.0 on healthy input.
  double mean_gap_coverage = 0.0;
};

/// Applies the paper's preprocessing to a raw cellular trajectory: SnapNet
/// filters followed by consecutive-tower deduplication.
traj::Trajectory Preprocess(const traj::Trajectory& raw,
                            const traj::FilterConfig& config);

/// Runs a matcher over a split of matched trajectories and macro-averages the
/// metrics. `corridor_radius` sets the CMF corridor (50 m for CMF50).
EvalSummary EvaluateMatcher(matchers::MapMatcher* matcher,
                            const network::RoadNetwork& net,
                            const std::vector<traj::MatchedTrajectory>& split,
                            const traj::FilterConfig& filter_config,
                            double corridor_radius = 50.0);

/// Per-trajectory evaluation record, for robustness bucketing (Fig. 7) and
/// case studies (Fig. 11).
struct TrajectoryEval {
  int index = 0;
  PathMetrics metrics;
  double hitting_ratio = 0.0;
  double time_s = 0.0;
  int num_breaks = 0;          ///< HMM breaks the matcher stitched across.
  double gap_seconds = 0.0;    ///< Seconds spanned by those break gaps.
  double gap_coverage = 1.0;   ///< Fraction of the time span left unbroken.
};

/// Like EvaluateMatcher but returns every per-trajectory record.
std::vector<TrajectoryEval> EvaluatePerTrajectory(
    matchers::MapMatcher* matcher, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius = 50.0);

/// Macro-averages per-trajectory records into a summary.
EvalSummary Summarize(const std::vector<TrajectoryEval>& records,
                      const std::string& matcher_name, bool has_hr);

/// Parallel counterpart of EvaluatePerTrajectory: preprocessing, matching and
/// metric computation for each trajectory run inside `batch`'s worker pool.
/// Records come back in input order and — because every worker owns a private
/// matcher clone and the route cache is semantically transparent — are
/// byte-identical to a serial run for every thread count (per-trajectory
/// times excepted).
std::vector<TrajectoryEval> EvaluatePerTrajectoryParallel(
    matchers::BatchMatcher* batch, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius = 50.0);

/// Parallel counterpart of EvaluateMatcher.
EvalSummary EvaluateMatcherParallel(
    matchers::BatchMatcher* batch, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius = 50.0);

/// Per-trajectory record of one online (fixed-lag streaming) run.
struct OnlineTrajectoryEval {
  int index = 0;
  /// Streamed committed path scored against ground truth.
  PathMetrics metrics;
  /// Longest-common-prefix ratio of the streamed path against the offline
  /// Viterbi reference: how far the online decision agrees with hindsight
  /// before first diverging. 1.0 = identical paths.
  double prefix_match = 0.0;
  /// Mean commit latency in points (== lag in steady state, smaller at end
  /// of stream where Finish() flushes the window).
  double commit_latency = 0.0;
  double time_s = 0.0;  ///< Streaming wall time (excludes the offline reference).
};

/// Macro-averaged online evaluation of one matcher at one lag.
struct OnlineEvalSummary {
  std::string matcher;
  int lag = 0;
  int num_trajectories = 0;
  double precision = 0.0;
  double recall = 0.0;
  double rmf = 0.0;
  double cmf50 = 0.0;
  double prefix_match = 0.0;
  double commit_latency = 0.0;
  double avg_time_s = 0.0;
};

/// LCP(streamed, offline) / |offline|; 1.0 when both are empty.
double PrefixMatchRatio(const std::vector<network::SegmentId>& streamed,
                        const std::vector<network::SegmentId>& offline);

/// Streams every trajectory of the split through ONE session of `matcher`
/// (Reset between trajectories — the production reuse path), scoring each
/// committed path against ground truth and against the session's own offline
/// Viterbi reference. The matcher must support streaming.
std::vector<OnlineTrajectoryEval> EvaluateOnline(
    matchers::MapMatcher* matcher, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, int lag,
    double corridor_radius = 50.0);

/// Parallel counterpart: multiplexes the whole split through a StreamEngine,
/// feeding points round-robin across trajectories so sessions genuinely
/// interleave. `offline_paths` (optional, parallel to the split) supplies the
/// offline references for prefix_match; pass nullptr to skip that column.
/// Per-trajectory time_s is not meaningful under multiplexing and is left 0.
std::vector<OnlineTrajectoryEval> EvaluateOnlineParallel(
    matchers::MatcherFactory factory, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config,
    const matchers::StreamEngineConfig& engine_config,
    const std::vector<std::vector<network::SegmentId>>* offline_paths = nullptr,
    double corridor_radius = 50.0);

/// Macro-averages online records into a summary row.
OnlineEvalSummary SummarizeOnline(const std::vector<OnlineTrajectoryEval>& records,
                                  const std::string& matcher_name, int lag);

}  // namespace lhmm::eval

#endif  // LHMM_EVAL_EVALUATOR_H_
