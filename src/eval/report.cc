#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "core/strings.h"

namespace lhmm::eval {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  return core::StrFormat("%.*f", digits, value);
}

namespace {

/// Minimal JSON string escaping (matcher names are plain identifiers, but a
/// stray quote or backslash must not corrupt the artifact).
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

std::string JsonNumber(double value) {
  // %.10g round-trips every metric we emit and never produces locale commas.
  return core::StrFormat("%.10g", value);
}

}  // namespace

std::string EvalJson(const std::string& label,
                     const std::vector<EvalSummary>& summaries,
                     const traj::SanitizeReport* sanitize) {
  std::string out = "{\n";
  out += "  \"label\": " + JsonString(label) + ",\n";
  if (sanitize != nullptr) {
    out += "  \"sanitize\": {\n";
    out += core::StrFormat(
        "    \"input_points\": %d,\n    \"output_points\": %d,\n"
        "    \"nonfinite\": %d,\n    \"out_of_order\": %d,\n"
        "    \"duplicate_time\": %d,\n    \"unknown_tower\": %d,\n"
        "    \"off_network\": %d,\n    \"dropped\": %d,\n"
        "    \"repaired\": %d,\n    \"issues\": %d,\n    \"clean\": %s\n",
        sanitize->input_points, sanitize->output_points, sanitize->nonfinite,
        sanitize->out_of_order, sanitize->duplicate_time,
        sanitize->unknown_tower, sanitize->off_network, sanitize->dropped,
        sanitize->repaired, sanitize->issues(),
        sanitize->clean() ? "true" : "false");
    out += "  },\n";
  }
  out += "  \"matchers\": [\n";
  for (size_t i = 0; i < summaries.size(); ++i) {
    const EvalSummary& s = summaries[i];
    out += "    {\n";
    out += "      \"matcher\": " + JsonString(s.matcher) + ",\n";
    out += core::StrFormat("      \"num_trajectories\": %d,\n",
                           s.num_trajectories);
    out += "      \"precision\": " + JsonNumber(s.precision) + ",\n";
    out += "      \"recall\": " + JsonNumber(s.recall) + ",\n";
    out += "      \"rmf\": " + JsonNumber(s.rmf) + ",\n";
    out += "      \"cmf50\": " + JsonNumber(s.cmf50) + ",\n";
    if (s.has_hr) {
      out += "      \"hitting_ratio\": " + JsonNumber(s.hitting_ratio) + ",\n";
    }
    out += "      \"avg_time_s\": " + JsonNumber(s.avg_time_s) + ",\n";
    out += "      \"breaks\": " + JsonNumber(s.mean_breaks) + ",\n";
    out += "      \"gap_seconds\": " + JsonNumber(s.mean_gap_seconds) + ",\n";
    out += "      \"gap_coverage\": " + JsonNumber(s.mean_gap_coverage) + "\n";
    out += i + 1 < summaries.size() ? "    },\n" : "    }\n";
  }
  out += "  ]\n}\n";
  return out;
}

core::Status WriteEvalJson(const std::string& label,
                           const std::vector<EvalSummary>& summaries,
                           const traj::SanitizeReport* sanitize,
                           const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return core::Status::IoError("cannot open " + path + " for writing");
  }
  const std::string body = EvalJson(label, summaries, sanitize);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int closed = std::fclose(f);
  if (written != body.size() || closed != 0) {
    return core::Status::IoError("short write to " + path);
  }
  return core::Status::Ok();
}

}  // namespace lhmm::eval
