#include "eval/report.h"

#include <algorithm>
#include <cstdio>

#include "core/strings.h"

namespace lhmm::eval {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t i = 0; i < header_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      line += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t w : widths) rule += std::string(w + 2, '-') + "|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  return core::StrFormat("%.*f", digits, value);
}

}  // namespace lhmm::eval
