#include "eval/evaluator.h"

#include "core/stopwatch.h"

namespace lhmm::eval {

traj::Trajectory Preprocess(const traj::Trajectory& raw,
                            const traj::FilterConfig& config) {
  traj::Trajectory t = traj::PreprocessCellular(raw, config);
  return traj::DeduplicateTowers(t);
}

std::vector<TrajectoryEval> EvaluatePerTrajectory(
    matchers::MapMatcher* matcher, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius) {
  std::vector<TrajectoryEval> out;
  out.reserve(split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    const traj::MatchedTrajectory& mt = split[i];
    const traj::Trajectory cleaned = Preprocess(mt.cellular, filter_config);
    core::Stopwatch watch;
    const matchers::MatchResult result = matcher->Match(cleaned);
    TrajectoryEval rec;
    rec.index = static_cast<int>(i);
    rec.time_s = watch.ElapsedSeconds();
    rec.metrics =
        ComputePathMetrics(net, result.path, mt.truth_path, corridor_radius);
    if (matcher->ProvidesCandidates()) {
      rec.hitting_ratio = HittingRatio(result.candidates, result.point_index,
                                       cleaned.size(), mt.truth_path);
    }
    out.push_back(rec);
  }
  return out;
}

EvalSummary Summarize(const std::vector<TrajectoryEval>& records,
                      const std::string& matcher_name, bool has_hr) {
  EvalSummary s;
  s.matcher = matcher_name;
  s.num_trajectories = static_cast<int>(records.size());
  s.has_hr = has_hr;
  if (records.empty()) return s;
  for (const TrajectoryEval& r : records) {
    s.precision += r.metrics.precision;
    s.recall += r.metrics.recall;
    s.rmf += r.metrics.rmf;
    s.cmf50 += r.metrics.cmf;
    s.hitting_ratio += r.hitting_ratio;
    s.avg_time_s += r.time_s;
  }
  const double n = static_cast<double>(records.size());
  s.precision /= n;
  s.recall /= n;
  s.rmf /= n;
  s.cmf50 /= n;
  s.hitting_ratio /= n;
  s.avg_time_s /= n;
  return s;
}

std::vector<TrajectoryEval> EvaluatePerTrajectoryParallel(
    matchers::BatchMatcher* batch, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius) {
  std::vector<TrajectoryEval> out(split.size());
  const bool has_candidates = batch->provides_candidates();
  batch->ForEach(
      static_cast<int64_t>(split.size()),
      [&](matchers::MapMatcher* matcher, int64_t i) {
        const traj::MatchedTrajectory& mt = split[i];
        const traj::Trajectory cleaned = Preprocess(mt.cellular, filter_config);
        core::Stopwatch watch;
        const matchers::MatchResult result = matcher->Match(cleaned);
        TrajectoryEval& rec = out[i];
        rec.index = static_cast<int>(i);
        rec.time_s = watch.ElapsedSeconds();
        rec.metrics =
            ComputePathMetrics(net, result.path, mt.truth_path, corridor_radius);
        if (has_candidates) {
          rec.hitting_ratio = HittingRatio(result.candidates, result.point_index,
                                           cleaned.size(), mt.truth_path);
        }
      });
  return out;
}

EvalSummary EvaluateMatcherParallel(
    matchers::BatchMatcher* batch, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius) {
  return Summarize(EvaluatePerTrajectoryParallel(batch, net, split, filter_config,
                                                 corridor_radius),
                   batch->name(), batch->provides_candidates());
}

EvalSummary EvaluateMatcher(matchers::MapMatcher* matcher,
                            const network::RoadNetwork& net,
                            const std::vector<traj::MatchedTrajectory>& split,
                            const traj::FilterConfig& filter_config,
                            double corridor_radius) {
  return Summarize(EvaluatePerTrajectory(matcher, net, split, filter_config,
                                         corridor_radius),
                   matcher->name(), matcher->ProvidesCandidates());
}

}  // namespace lhmm::eval
