#include "eval/evaluator.h"

#include <algorithm>

#include "core/logging.h"
#include "core/stopwatch.h"
#include "matchers/streaming.h"

namespace lhmm::eval {

traj::Trajectory Preprocess(const traj::Trajectory& raw,
                            const traj::FilterConfig& config) {
  traj::Trajectory t = traj::PreprocessCellular(raw, config);
  return traj::DeduplicateTowers(t);
}

std::vector<TrajectoryEval> EvaluatePerTrajectory(
    matchers::MapMatcher* matcher, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius) {
  std::vector<TrajectoryEval> out;
  out.reserve(split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    const traj::MatchedTrajectory& mt = split[i];
    const traj::Trajectory cleaned = Preprocess(mt.cellular, filter_config);
    core::Stopwatch watch;
    const matchers::MatchResult result = matcher->Match(cleaned);
    TrajectoryEval rec;
    rec.index = static_cast<int>(i);
    rec.time_s = watch.ElapsedSeconds();
    rec.metrics =
        ComputePathMetrics(net, result.path, mt.truth_path, corridor_radius);
    rec.num_breaks = result.num_breaks;
    rec.gap_seconds = result.gap_seconds;
    rec.gap_coverage = result.gap_coverage;
    if (matcher->ProvidesCandidates()) {
      rec.hitting_ratio = HittingRatio(result.candidates, result.point_index,
                                       cleaned.size(), mt.truth_path);
    }
    out.push_back(rec);
  }
  return out;
}

EvalSummary Summarize(const std::vector<TrajectoryEval>& records,
                      const std::string& matcher_name, bool has_hr) {
  EvalSummary s;
  s.matcher = matcher_name;
  s.num_trajectories = static_cast<int>(records.size());
  s.has_hr = has_hr;
  if (records.empty()) return s;
  for (const TrajectoryEval& r : records) {
    s.precision += r.metrics.precision;
    s.recall += r.metrics.recall;
    s.rmf += r.metrics.rmf;
    s.cmf50 += r.metrics.cmf;
    s.hitting_ratio += r.hitting_ratio;
    s.avg_time_s += r.time_s;
    s.mean_breaks += r.num_breaks;
    s.mean_gap_seconds += r.gap_seconds;
    s.mean_gap_coverage += r.gap_coverage;
  }
  const double n = static_cast<double>(records.size());
  s.precision /= n;
  s.recall /= n;
  s.rmf /= n;
  s.cmf50 /= n;
  s.hitting_ratio /= n;
  s.avg_time_s /= n;
  s.mean_breaks /= n;
  s.mean_gap_seconds /= n;
  s.mean_gap_coverage /= n;
  return s;
}

std::vector<TrajectoryEval> EvaluatePerTrajectoryParallel(
    matchers::BatchMatcher* batch, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius) {
  std::vector<TrajectoryEval> out(split.size());
  const bool has_candidates = batch->provides_candidates();
  batch->ForEach(
      static_cast<int64_t>(split.size()),
      [&](matchers::MapMatcher* matcher, int64_t i) {
        const traj::MatchedTrajectory& mt = split[i];
        const traj::Trajectory cleaned = Preprocess(mt.cellular, filter_config);
        core::Stopwatch watch;
        const matchers::MatchResult result = matcher->Match(cleaned);
        TrajectoryEval& rec = out[i];
        rec.index = static_cast<int>(i);
        rec.time_s = watch.ElapsedSeconds();
        rec.metrics =
            ComputePathMetrics(net, result.path, mt.truth_path, corridor_radius);
        rec.num_breaks = result.num_breaks;
        rec.gap_seconds = result.gap_seconds;
        rec.gap_coverage = result.gap_coverage;
        if (has_candidates) {
          rec.hitting_ratio = HittingRatio(result.candidates, result.point_index,
                                           cleaned.size(), mt.truth_path);
        }
      });
  return out;
}

EvalSummary EvaluateMatcherParallel(
    matchers::BatchMatcher* batch, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, double corridor_radius) {
  return Summarize(EvaluatePerTrajectoryParallel(batch, net, split, filter_config,
                                                 corridor_radius),
                   batch->name(), batch->provides_candidates());
}

double PrefixMatchRatio(const std::vector<network::SegmentId>& streamed,
                        const std::vector<network::SegmentId>& offline) {
  if (offline.empty()) return streamed.empty() ? 1.0 : 0.0;
  const size_t n = std::min(streamed.size(), offline.size());
  size_t lcp = 0;
  while (lcp < n && streamed[lcp] == offline[lcp]) ++lcp;
  return static_cast<double>(lcp) / static_cast<double>(offline.size());
}

std::vector<OnlineTrajectoryEval> EvaluateOnline(
    matchers::MapMatcher* matcher, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config, int lag, double corridor_radius) {
  matchers::StreamConfig sc;
  sc.lag = lag;
  std::unique_ptr<matchers::StreamingSession> session = matcher->OpenSession(sc);
  CHECK(session != nullptr) << matcher->name() << " does not support streaming";
  auto* online = dynamic_cast<matchers::OnlineSession*>(session.get());
  std::vector<OnlineTrajectoryEval> out;
  out.reserve(split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    const traj::MatchedTrajectory& mt = split[i];
    const traj::Trajectory cleaned = Preprocess(mt.cellular, filter_config);
    session->Reset();
    OnlineTrajectoryEval rec;
    rec.index = static_cast<int>(i);
    // Offline reference first, while the session is idle (shared models).
    std::vector<network::SegmentId> offline;
    if (online != nullptr) offline = online->MatchOffline(cleaned).path;
    core::Stopwatch watch;
    for (int p = 0; p < cleaned.size(); ++p) session->Push(cleaned[p]);
    session->Finish();
    rec.time_s = watch.ElapsedSeconds();
    const std::vector<network::SegmentId>& streamed = session->committed();
    rec.metrics = ComputePathMetrics(net, streamed, mt.truth_path, corridor_radius);
    if (online != nullptr) rec.prefix_match = PrefixMatchRatio(streamed, offline);
    rec.commit_latency = session->stats().MeanCommitLatency();
    out.push_back(rec);
  }
  return out;
}

std::vector<OnlineTrajectoryEval> EvaluateOnlineParallel(
    matchers::MatcherFactory factory, const network::RoadNetwork& net,
    const std::vector<traj::MatchedTrajectory>& split,
    const traj::FilterConfig& filter_config,
    const matchers::StreamEngineConfig& engine_config,
    const std::vector<std::vector<network::SegmentId>>* offline_paths,
    double corridor_radius) {
  if (offline_paths != nullptr) CHECK_EQ(offline_paths->size(), split.size());
  std::vector<traj::Trajectory> cleaned(split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    cleaned[i] = Preprocess(split[i].cellular, filter_config);
  }
  matchers::StreamEngine engine(std::move(factory), engine_config);
  std::vector<matchers::SessionId> ids(split.size());
  for (size_t i = 0; i < split.size(); ++i) ids[i] = engine.Open();
  // Round-robin point feeding: one point of every live trajectory per sweep,
  // so thousands of sessions interleave the way a serving front end would.
  size_t done = 0;
  for (int pos = 0; done < split.size(); ++pos) {
    for (size_t i = 0; i < split.size(); ++i) {
      if (pos < cleaned[i].size()) {
        engine.Push(ids[i], cleaned[i][pos]);
      } else if (pos == cleaned[i].size()) {
        engine.Finish(ids[i]);
        ++done;
      }
    }
  }
  engine.Barrier();
  std::vector<OnlineTrajectoryEval> out(split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    OnlineTrajectoryEval& rec = out[i];
    rec.index = static_cast<int>(i);
    const std::vector<network::SegmentId>& streamed = engine.Committed(ids[i]);
    rec.metrics =
        ComputePathMetrics(net, streamed, split[i].truth_path, corridor_radius);
    if (offline_paths != nullptr) {
      rec.prefix_match = PrefixMatchRatio(streamed, (*offline_paths)[i]);
    }
    rec.commit_latency = engine.Stats(ids[i]).MeanCommitLatency();
  }
  return out;
}

OnlineEvalSummary SummarizeOnline(const std::vector<OnlineTrajectoryEval>& records,
                                  const std::string& matcher_name, int lag) {
  OnlineEvalSummary s;
  s.matcher = matcher_name;
  s.lag = lag;
  s.num_trajectories = static_cast<int>(records.size());
  if (records.empty()) return s;
  for (const OnlineTrajectoryEval& r : records) {
    s.precision += r.metrics.precision;
    s.recall += r.metrics.recall;
    s.rmf += r.metrics.rmf;
    s.cmf50 += r.metrics.cmf;
    s.prefix_match += r.prefix_match;
    s.commit_latency += r.commit_latency;
    s.avg_time_s += r.time_s;
  }
  const double n = static_cast<double>(records.size());
  s.precision /= n;
  s.recall /= n;
  s.rmf /= n;
  s.cmf50 /= n;
  s.prefix_match /= n;
  s.commit_latency /= n;
  s.avg_time_s /= n;
  return s;
}

EvalSummary EvaluateMatcher(matchers::MapMatcher* matcher,
                            const network::RoadNetwork& net,
                            const std::vector<traj::MatchedTrajectory>& split,
                            const traj::FilterConfig& filter_config,
                            double corridor_radius) {
  return Summarize(EvaluatePerTrajectory(matcher, net, split, filter_config,
                                         corridor_radius),
                   matcher->name(), matcher->ProvidesCandidates());
}

}  // namespace lhmm::eval
