#ifndef LHMM_EVAL_METRICS_H_
#define LHMM_EVAL_METRICS_H_

#include <vector>

#include "hmm/candidate.h"
#include "network/road_network.h"

namespace lhmm::eval {

/// Per-trajectory accuracy metrics (Section V-A3).
struct PathMetrics {
  double precision = 0.0;  ///< Correct length / matched length.
  double recall = 0.0;     ///< Correct length / truth length.
  double rmf = 0.0;        ///< (missing + redundant length) / truth length.
  double cmf = 0.0;        ///< Corridor Mismatch Fraction at the given radius.
};

/// Computes precision, recall, RMF (Eq. 22), and CMF (Eq. 23, corridor radius
/// `corridor_radius` meters, 50 for CMF50) for one matched path against the
/// ground truth path.
PathMetrics ComputePathMetrics(const network::RoadNetwork& net,
                               const std::vector<network::SegmentId>& matched,
                               const std::vector<network::SegmentId>& truth,
                               double corridor_radius = 50.0);

/// Hitting Ratio of one trajectory: the fraction of trajectory points whose
/// (final) candidate set contains a road of the truth path. Points dropped
/// before the DP (empty candidate set) count as misses.
double HittingRatio(const std::vector<hmm::CandidateSet>& candidates,
                    const std::vector<int>& point_index, int total_points,
                    const std::vector<network::SegmentId>& truth);

}  // namespace lhmm::eval

#endif  // LHMM_EVAL_METRICS_H_
