#ifndef LHMM_EVAL_ERROR_ANALYSIS_H_
#define LHMM_EVAL_ERROR_ANALYSIS_H_

#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "traj/trajectory.h"

namespace lhmm::eval {

/// One quantile bucket of an error-analysis sweep.
struct Bucket {
  double lo = 0.0;         ///< Attribute range covered by the bucket.
  double hi = 0.0;
  int n = 0;               ///< Trajectories in the bucket.
  double precision = 0.0;  ///< Macro-averaged metrics within the bucket.
  double recall = 0.0;
  double rmf = 0.0;
  double cmf = 0.0;
  double hitting_ratio = 0.0;
};

/// Buckets per-trajectory evaluation records by an attribute (one value per
/// trajectory, parallel to `records`) into `num_buckets` equal-count
/// quantiles, macro-averaging the metrics per bucket. The generalization of
/// the paper's Fig. 7(a) bucketing to arbitrary attributes.
std::vector<Bucket> BucketByAttribute(const std::vector<double>& attribute,
                                      const std::vector<TrajectoryEval>& records,
                                      int num_buckets);

/// Per-trajectory attribute: mean positioning error (tower position vs the
/// co-recorded GPS position at each cellular sample).
double MeanPositioningError(const traj::MatchedTrajectory& mt);

/// Per-trajectory attribute: mean time gap between cellular samples.
double MeanSamplingGap(const traj::MatchedTrajectory& mt);

/// Per-trajectory attribute: route length of the ground truth path.
double TruthLength(const network::RoadNetwork& net,
                   const traj::MatchedTrajectory& mt);

/// Renders buckets as a text table with the given attribute label.
std::string BucketTable(const std::vector<Bucket>& buckets,
                        const std::string& attribute_label);

}  // namespace lhmm::eval

#endif  // LHMM_EVAL_ERROR_ANALYSIS_H_
