#ifndef LHMM_EVAL_SIGNIFICANCE_H_
#define LHMM_EVAL_SIGNIFICANCE_H_

#include <vector>

#include "core/rng.h"
#include "eval/evaluator.h"

namespace lhmm::eval {

/// Result of a paired-bootstrap comparison between two matchers over the
/// same trajectory set.
struct BootstrapResult {
  double mean_diff = 0.0;   ///< mean(metric_a - metric_b) over trajectories.
  double ci_low = 0.0;      ///< 95% confidence interval of the difference.
  double ci_high = 0.0;
  double p_value = 0.0;     ///< Two-sided p for H0: no difference.
  int num_samples = 0;      ///< Bootstrap resamples drawn.
};

/// Which per-trajectory metric to compare.
enum class Metric { kPrecision, kRecall, kRmf, kCmf, kHittingRatio };

/// Extracts the chosen metric from a record.
double MetricValue(const TrajectoryEval& record, Metric metric);

/// Paired bootstrap over per-trajectory records of two matchers evaluated on
/// the same split (records must be index-aligned). Benchmark-harness staple:
/// a Table II delta only means something if its CI excludes zero.
BootstrapResult PairedBootstrap(const std::vector<TrajectoryEval>& a,
                                const std::vector<TrajectoryEval>& b,
                                Metric metric, int resamples = 2000,
                                uint64_t seed = 17);

}  // namespace lhmm::eval

#endif  // LHMM_EVAL_SIGNIFICANCE_H_
