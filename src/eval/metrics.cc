#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "core/logging.h"
#include "geo/polyline.h"

namespace lhmm::eval {

namespace {

/// Sum of lengths of `path` segments whose id appears in `other_set`.
double OverlapLength(const network::RoadNetwork& net,
                     const std::vector<network::SegmentId>& path,
                     const std::unordered_set<network::SegmentId>& other_set) {
  std::unordered_set<network::SegmentId> counted;
  double total = 0.0;
  for (network::SegmentId sid : path) {
    if (other_set.count(sid) && counted.insert(sid).second) {
      total += net.segment(sid).length;
    }
  }
  return total;
}

double UniqueLength(const network::RoadNetwork& net,
                    const std::vector<network::SegmentId>& path) {
  std::unordered_set<network::SegmentId> seen;
  double total = 0.0;
  for (network::SegmentId sid : path) {
    if (seen.insert(sid).second) total += net.segment(sid).length;
  }
  return total;
}

}  // namespace

PathMetrics ComputePathMetrics(const network::RoadNetwork& net,
                               const std::vector<network::SegmentId>& matched,
                               const std::vector<network::SegmentId>& truth,
                               double corridor_radius) {
  PathMetrics out;
  if (truth.empty()) return out;

  std::unordered_set<network::SegmentId> truth_set(truth.begin(), truth.end());
  std::unordered_set<network::SegmentId> matched_set(matched.begin(), matched.end());
  // A segment and its reverse twin describe the same physical road; count a
  // matched twin as correct (driving direction mix-ups on two-way roads are
  // not a geometric error).
  std::unordered_set<network::SegmentId> truth_or_twin = truth_set;
  for (network::SegmentId sid : truth) {
    const network::SegmentId twin = net.segment(sid).reverse;
    if (twin != network::kInvalidSegment) truth_or_twin.insert(twin);
  }
  std::unordered_set<network::SegmentId> matched_or_twin = matched_set;
  for (network::SegmentId sid : matched) {
    const network::SegmentId twin = net.segment(sid).reverse;
    if (twin != network::kInvalidSegment) matched_or_twin.insert(twin);
  }

  const double truth_len = UniqueLength(net, truth);
  const double matched_len = UniqueLength(net, matched);
  const double correct_in_matched = OverlapLength(net, matched, truth_or_twin);
  const double correct_in_truth = OverlapLength(net, truth, matched_or_twin);

  out.precision = matched_len > 0.0 ? correct_in_matched / matched_len : 0.0;
  out.recall = correct_in_truth / truth_len;

  const double missing = truth_len - correct_in_truth;
  const double redundant = matched_len - correct_in_matched;
  out.rmf = (missing + redundant) / truth_len;  // Eq. (22).

  // CMF (Eq. 23): sample the truth geometry and test corridor coverage.
  if (matched.empty()) {
    out.cmf = 1.0;
    return out;
  }
  constexpr double kSampleStep = 15.0;  // Meters between corridor probes.
  int samples = 0;
  int uncovered = 0;
  for (network::SegmentId sid : truth) {
    const geo::Polyline& geom = net.segment(sid).geometry;
    const int n = std::max(1, static_cast<int>(geom.Length() / kSampleStep));
    for (int i = 0; i <= n; ++i) {
      const geo::Point p = geom.PointAt(geom.Length() * i / n);
      ++samples;
      bool covered = false;
      for (network::SegmentId mid : matched) {
        if (net.segment(mid).geometry.Project(p).dist <= corridor_radius) {
          covered = true;
          break;
        }
      }
      if (!covered) ++uncovered;
    }
  }
  out.cmf = samples > 0 ? static_cast<double>(uncovered) / samples : 0.0;
  return out;
}

double HittingRatio(const std::vector<hmm::CandidateSet>& candidates,
                    const std::vector<int>& point_index, int total_points,
                    const std::vector<network::SegmentId>& truth) {
  CHECK_EQ(candidates.size(), point_index.size());
  if (total_points <= 0) return 0.0;
  std::unordered_set<network::SegmentId> truth_set(truth.begin(), truth.end());
  int hits = 0;
  for (const hmm::CandidateSet& cs : candidates) {
    for (const hmm::Candidate& c : cs) {
      if (truth_set.count(c.segment)) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / total_points;
}

}  // namespace lhmm::eval
