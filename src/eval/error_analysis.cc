#include "eval/error_analysis.h"

#include <algorithm>
#include <numeric>

#include "core/logging.h"
#include "eval/report.h"

namespace lhmm::eval {

std::vector<Bucket> BucketByAttribute(const std::vector<double>& attribute,
                                      const std::vector<TrajectoryEval>& records,
                                      int num_buckets) {
  CHECK_EQ(attribute.size(), records.size());
  CHECK_GE(num_buckets, 1);
  std::vector<Bucket> out;
  if (records.empty()) return out;

  std::vector<int> order(records.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return attribute[a] < attribute[b]; });

  const int n = static_cast<int>(records.size());
  for (int b = 0; b < num_buckets; ++b) {
    const int begin = b * n / num_buckets;
    const int end = (b + 1) * n / num_buckets;
    if (begin >= end) continue;
    Bucket bucket;
    bucket.lo = attribute[order[begin]];
    bucket.hi = attribute[order[end - 1]];
    bucket.n = end - begin;
    for (int i = begin; i < end; ++i) {
      const TrajectoryEval& r = records[order[i]];
      bucket.precision += r.metrics.precision;
      bucket.recall += r.metrics.recall;
      bucket.rmf += r.metrics.rmf;
      bucket.cmf += r.metrics.cmf;
      bucket.hitting_ratio += r.hitting_ratio;
    }
    const double count = static_cast<double>(bucket.n);
    bucket.precision /= count;
    bucket.recall /= count;
    bucket.rmf /= count;
    bucket.cmf /= count;
    bucket.hitting_ratio /= count;
    out.push_back(bucket);
  }
  return out;
}

double MeanPositioningError(const traj::MatchedTrajectory& mt) {
  if (mt.cellular.empty() || mt.gps.empty()) return 0.0;
  double sum = 0.0;
  for (const traj::TrajPoint& p : mt.cellular.points) {
    sum += geo::Distance(p.pos, traj::TruePositionAt(mt, p.t));
  }
  return sum / static_cast<double>(mt.cellular.size());
}

double MeanSamplingGap(const traj::MatchedTrajectory& mt) {
  return mt.cellular.MeanSamplingIntervalSeconds();
}

double TruthLength(const network::RoadNetwork& net,
                   const traj::MatchedTrajectory& mt) {
  return network::PathLength(net, mt.truth_path);
}

std::string BucketTable(const std::vector<Bucket>& buckets,
                        const std::string& attribute_label) {
  TextTable table({attribute_label, "n", "precision", "recall", "RMF", "CMF50",
                   "HR"});
  for (const Bucket& b : buckets) {
    table.AddRow({Fmt(b.lo, 0) + " - " + Fmt(b.hi, 0),
                  Fmt(static_cast<double>(b.n), 0), Fmt(b.precision),
                  Fmt(b.recall), Fmt(b.rmf), Fmt(b.cmf), Fmt(b.hitting_ratio)});
  }
  return table.ToString();
}

}  // namespace lhmm::eval
