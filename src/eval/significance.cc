#include "eval/significance.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::eval {

double MetricValue(const TrajectoryEval& record, Metric metric) {
  switch (metric) {
    case Metric::kPrecision:
      return record.metrics.precision;
    case Metric::kRecall:
      return record.metrics.recall;
    case Metric::kRmf:
      return record.metrics.rmf;
    case Metric::kCmf:
      return record.metrics.cmf;
    case Metric::kHittingRatio:
      return record.hitting_ratio;
  }
  return 0.0;
}

BootstrapResult PairedBootstrap(const std::vector<TrajectoryEval>& a,
                                const std::vector<TrajectoryEval>& b,
                                Metric metric, int resamples, uint64_t seed) {
  CHECK_EQ(a.size(), b.size());
  CHECK(!a.empty());
  CHECK_GE(resamples, 100);
  const int n = static_cast<int>(a.size());

  std::vector<double> diffs(n);
  double mean = 0.0;
  for (int i = 0; i < n; ++i) {
    diffs[i] = MetricValue(a[i], metric) - MetricValue(b[i], metric);
    mean += diffs[i];
  }
  mean /= n;

  core::Rng rng(seed);
  std::vector<double> means(resamples);
  int sign_flips = 0;
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += diffs[rng.UniformInt(n)];
    means[r] = sum / n;
    // Two-sided sign test contribution: resampled mean on the other side of
    // zero from the observed mean.
    if ((mean >= 0.0 && means[r] <= 0.0) || (mean <= 0.0 && means[r] >= 0.0)) {
      ++sign_flips;
    }
  }
  std::sort(means.begin(), means.end());

  BootstrapResult out;
  out.mean_diff = mean;
  out.ci_low = means[static_cast<size_t>(0.025 * (resamples - 1))];
  out.ci_high = means[static_cast<size_t>(0.975 * (resamples - 1))];
  out.p_value = std::min(1.0, 2.0 * static_cast<double>(sign_flips) / resamples);
  out.num_samples = resamples;
  return out;
}

}  // namespace lhmm::eval
