#ifndef LHMM_EVAL_REPORT_H_
#define LHMM_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "eval/evaluator.h"
#include "traj/sanitize.h"

namespace lhmm::eval {

/// A fixed-width text table printer for benchmark output: one header row,
/// then data rows. Columns are sized to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the table with column separators and a header rule.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fmt(double value, int digits = 3);

/// Writes a machine-readable evaluation artifact as JSON: one object per
/// matcher summary (accuracy, timing, and the robustness columns — breaks,
/// gap seconds, gap coverage), plus an optional input-sanitization block with
/// every SanitizeReport counter. `label` names the run (e.g. "fig7_smoke").
/// Pass sanitize == nullptr when the input was not sanitized.
core::Status WriteEvalJson(const std::string& label,
                           const std::vector<EvalSummary>& summaries,
                           const traj::SanitizeReport* sanitize,
                           const std::string& path);

/// The JSON body written by WriteEvalJson, for tests and in-memory use.
std::string EvalJson(const std::string& label,
                     const std::vector<EvalSummary>& summaries,
                     const traj::SanitizeReport* sanitize);

}  // namespace lhmm::eval

#endif  // LHMM_EVAL_REPORT_H_
