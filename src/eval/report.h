#ifndef LHMM_EVAL_REPORT_H_
#define LHMM_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace lhmm::eval {

/// A fixed-width text table printer for benchmark output: one header row,
/// then data rows. Columns are sized to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders the table with column separators and a header rule.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string Fmt(double value, int digits = 3);

}  // namespace lhmm::eval

#endif  // LHMM_EVAL_REPORT_H_
