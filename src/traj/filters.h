#ifndef LHMM_TRAJ_FILTERS_H_
#define LHMM_TRAJ_FILTERS_H_

#include "traj/trajectory.h"

namespace lhmm::traj {

/// Parameters of the SnapNet-style preprocessing pipeline [12] that the paper
/// applies to every cellular trajectory before matching: a speed filter, an
/// alpha-trimmed mean filter, and a direction filter.
struct FilterConfig {
  /// Speed filter: samples implying a speed above this (m/s) w.r.t. the last
  /// accepted sample are dropped. Cellular sampling intervals are short, so
  /// this threshold really bounds the *displacement per sample* the pipeline
  /// tolerates — too low and it deletes exactly the high-error points the
  /// matcher must be robust to (the paper's noisy points survive its
  /// filters). Default tolerates ~1.7 km of error at a 10 s interval.
  double max_speed = 170.0;
  /// Alpha-trimmed mean window half-width (samples on each side). The
  /// default (1, with trim_alpha 1) is a median-of-three: single-sample
  /// spikes are suppressed while persistent attachments pass through.
  int trim_window = 1;
  /// Alpha-trimmed mean: number of extreme coordinates trimmed per side.
  int trim_alpha = 1;
  /// Direction filter: drop a point whose incoming/outgoing headings differ
  /// by more than this (radians) while the neighbors keep heading, i.e. a
  /// ping-pong outlier (~150 degrees default).
  double max_turn = 2.6;
  /// Direction filter only applies to hops at least this long, meters.
  double min_hop_for_direction = 150.0;
};

/// Removes samples that imply physically impossible speeds. The first sample
/// is always kept.
Trajectory SpeedFilter(const Trajectory& in, const FilterConfig& config);

/// Alpha-trimmed mean smoother: each position is replaced by the mean of its
/// window after trimming the most extreme coordinates. Timestamps and tower
/// ids are preserved (the tower id still names the serving tower; only the
/// position estimate is smoothed).
Trajectory AlphaTrimmedMeanFilter(const Trajectory& in, const FilterConfig& config);

/// Drops ping-pong outliers: interior points that force a near-reversal of
/// direction over long hops (classic cell re-selection noise).
Trajectory DirectionFilter(const Trajectory& in, const FilterConfig& config);

/// The full SnapNet preprocessing pipeline in the paper's order:
/// speed -> alpha-trimmed mean -> direction.
Trajectory PreprocessCellular(const Trajectory& in, const FilterConfig& config);

/// A configuration under which every filter is a no-op (for design-choice
/// ablations measuring the preprocessing pipeline's contribution).
FilterConfig NoopFilterConfig();

/// Collapses consecutive samples that share the same serving tower into one
/// (keeping the first); standard cellular dedup before matching.
Trajectory DeduplicateTowers(const Trajectory& in);

/// Downsamples to approximately `rate_per_minute` samples per minute by
/// keeping samples at least 60/rate seconds apart. Used by the Fig. 7(b)
/// sampling-rate robustness sweep.
Trajectory Resample(const Trajectory& in, double rate_per_minute);

}  // namespace lhmm::traj

#endif  // LHMM_TRAJ_FILTERS_H_
