#include "traj/sanitize.h"

#include <algorithm>
#include <cmath>

#include "core/strings.h"

namespace lhmm::traj {

namespace {

bool Finite(const TrajPoint& p) {
  return std::isfinite(p.pos.x) && std::isfinite(p.pos.y) && std::isfinite(p.t);
}

core::Status RejectAt(int i, const std::string& what) {
  return core::Status::InvalidArgument(
      core::StrFormat("point %d: %s", i, what.c_str()));
}

}  // namespace

const char* SanitizePolicyName(SanitizePolicy policy) {
  switch (policy) {
    case SanitizePolicy::kReject:
      return "reject";
    case SanitizePolicy::kDropPoint:
      return "drop-point";
    case SanitizePolicy::kRepair:
      return "repair";
  }
  return "unknown";
}

std::string SanitizeReport::ToString() const {
  return core::StrFormat(
      "points %d -> %d (nonfinite %d, out-of-order %d, duplicate-time %d, "
      "unknown-tower %d, off-network %d; dropped %d, repaired %d)",
      input_points, output_points, nonfinite, out_of_order, duplicate_time,
      unknown_tower, off_network, dropped, repaired);
}

core::Result<Trajectory> Sanitize(const Trajectory& in,
                                  const SanitizeConfig& config,
                                  SanitizeReport* report) {
  SanitizeReport local;
  SanitizeReport& r = report != nullptr ? *report : local;
  r = SanitizeReport{};
  r.input_points = in.size();
  const bool reject = config.policy == SanitizePolicy::kReject;
  const bool repair = config.policy == SanitizePolicy::kRepair;

  geo::BBox bounds;
  const bool check_bounds =
      config.network_bounds.has_value() && !config.network_bounds->Empty();
  if (check_bounds) {
    bounds = *config.network_bounds;
    bounds.Inflate(config.off_network_margin);
  }

  // Pass 1: per-point checks (finiteness, tower universe, network bounds).
  Trajectory kept;
  kept.points.reserve(in.points.size());
  for (int i = 0; i < in.size(); ++i) {
    TrajPoint p = in[i];
    if (!Finite(p)) {
      ++r.nonfinite;
      if (reject) return RejectAt(i, "non-finite coordinate or timestamp");
      ++r.dropped;  // No repair can invent a position; drop in both modes.
      continue;
    }
    if (config.num_towers >= 0 && p.tower != kInvalidTower &&
        (p.tower < 0 || p.tower >= config.num_towers)) {
      ++r.unknown_tower;
      if (reject) {
        return RejectAt(i, core::StrFormat("unknown tower id %d", p.tower));
      }
      if (repair) {
        // The fix is still a usable position sample; only the tower label is
        // wrong, so clear it (matchers treat kInvalidTower as tower-less).
        p.tower = kInvalidTower;
        ++r.repaired;
      } else {
        ++r.dropped;
        continue;
      }
    }
    if (check_bounds && !bounds.Contains(p.pos)) {
      ++r.off_network;
      if (reject) return RejectAt(i, "position outside the network bounds");
      if (repair) {
        p.pos.x = std::clamp(p.pos.x, bounds.min_x, bounds.max_x);
        p.pos.y = std::clamp(p.pos.y, bounds.min_y, bounds.max_y);
        ++r.repaired;
      } else {
        ++r.dropped;
        continue;
      }
    }
    kept.points.push_back(p);
  }

  // Pass 2: time order. Repair reorders (stable, so same-timestamp points
  // keep arrival order); drop discards any point that moves time backwards.
  int reversals = 0;
  int first_reversal = -1;
  for (size_t i = 1; i < kept.points.size(); ++i) {
    if (kept.points[i].t < kept.points[i - 1].t) {
      ++reversals;
      if (first_reversal < 0) first_reversal = static_cast<int>(i);
    }
  }
  if (reversals > 0) {
    r.out_of_order += reversals;
    if (reject) return RejectAt(first_reversal, "timestamp moved backwards");
    if (repair) {
      std::stable_sort(
          kept.points.begin(), kept.points.end(),
          [](const TrajPoint& a, const TrajPoint& b) { return a.t < b.t; });
      r.repaired += reversals;
    } else {
      Trajectory ordered;
      ordered.points.reserve(kept.points.size());
      for (const TrajPoint& p : kept.points) {
        if (!ordered.points.empty() && p.t < ordered.points.back().t) {
          ++r.dropped;
          continue;
        }
        ordered.points.push_back(p);
      }
      kept = std::move(ordered);
    }
  }

  // Pass 3: duplicate timestamps. Two fixes at one instant carry no motion
  // information and break dt-based transition features; keep the first.
  Trajectory out;
  out.points.reserve(kept.points.size());
  for (size_t i = 0; i < kept.points.size(); ++i) {
    if (!out.points.empty() && kept.points[i].t == out.points.back().t) {
      ++r.duplicate_time;
      if (reject) {
        return RejectAt(static_cast<int>(i), "duplicate timestamp");
      }
      ++r.dropped;
      continue;
    }
    out.points.push_back(kept.points[i]);
  }

  r.output_points = out.size();
  return out;
}

}  // namespace lhmm::traj
