#ifndef LHMM_TRAJ_SANITIZE_H_
#define LHMM_TRAJ_SANITIZE_H_

#include <optional>
#include <string>

#include "core/status.h"
#include "geo/bbox.h"
#include "traj/trajectory.h"

namespace lhmm::traj {

/// What to do when a trajectory point fails validation.
enum class SanitizePolicy {
  /// Fail the whole trajectory: Sanitize returns InvalidArgument naming the
  /// first offending point. For pipelines that treat bad input as a bug.
  kReject,
  /// Remove offending points and keep the rest. The default serving posture:
  /// a feed with a few broken fixes still matches.
  kDropPoint,
  /// Fix what has a well-defined repair (reorder timestamps, clear unknown
  /// tower ids, clamp runaway coordinates); drop what does not (non-finite
  /// values, duplicate timestamps).
  kRepair,
};

const char* SanitizePolicyName(SanitizePolicy policy);

/// Validation knobs. Checks with no configured reference data are skipped
/// (no tower universe => no unknown-tower check; no bounds => no off-network
/// check), so the zero-argument default still catches the always-wrong
/// classes: non-finite values and broken time order.
struct SanitizeConfig {
  SanitizePolicy policy = SanitizePolicy::kDropPoint;
  /// Tower ids valid on this network are [0, num_towers). kInvalidTower is
  /// always allowed (GPS samples). Negative disables the check.
  int num_towers = -1;
  /// When set, points outside these bounds inflated by `off_network_margin`
  /// are off-network (a cell fix can legitimately sit well outside the road
  /// bbox — the margin absorbs the 0.1-3 km positioning error regime).
  std::optional<geo::BBox> network_bounds;
  double off_network_margin = 3000.0;
};

/// Per-trajectory account of what Sanitize saw and did. Issue counters count
/// detections; `dropped`/`repaired` count the actions taken on them.
struct SanitizeReport {
  int input_points = 0;
  int output_points = 0;
  int nonfinite = 0;       ///< NaN/inf coordinate or timestamp.
  int out_of_order = 0;    ///< Timestamp moved backwards.
  int duplicate_time = 0;  ///< Timestamp equal to the previous kept point's.
  int unknown_tower = 0;   ///< TowerId outside [0, num_towers).
  int off_network = 0;     ///< Position outside the inflated network bounds.
  int dropped = 0;
  int repaired = 0;

  /// True when the input passed every enabled check untouched.
  bool clean() const {
    return nonfinite == 0 && out_of_order == 0 && duplicate_time == 0 &&
           unknown_tower == 0 && off_network == 0;
  }
  int issues() const {
    return nonfinite + out_of_order + duplicate_time + unknown_tower +
           off_network;
  }
  std::string ToString() const;
};

/// Validates (and under kDropPoint/kRepair, cleans) one trajectory.
///
/// Checks, in order: non-finite coordinates/timestamps, unknown tower ids,
/// off-network positions, non-monotone timestamps, duplicate timestamps.
/// Under kReject the first detection fails the call with the point index in
/// the message; otherwise the returned trajectory is always structurally
/// sound: finite, strictly increasing timestamps, known (or invalid) towers.
/// `report` (optional) receives the detection/action counts either way.
core::Result<Trajectory> Sanitize(const Trajectory& in,
                                  const SanitizeConfig& config,
                                  SanitizeReport* report = nullptr);

}  // namespace lhmm::traj

#endif  // LHMM_TRAJ_SANITIZE_H_
