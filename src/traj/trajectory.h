#ifndef LHMM_TRAJ_TRAJECTORY_H_
#define LHMM_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "network/road_network.h"

namespace lhmm::traj {

using TowerId = int32_t;
inline constexpr TowerId kInvalidTower = -1;

/// One time-stamped sample of a trajectory (Definition 2). For cellular
/// trajectories `pos` is the location of the serving cell tower, which may be
/// far from the user's actual position; `tower` identifies that tower. For
/// GPS trajectories `tower` is kInvalidTower.
struct TrajPoint {
  geo::Point pos;
  double t = 0.0;  ///< Seconds since the trajectory start epoch.
  TowerId tower = kInvalidTower;
};

/// A sequence of time-stamped samples, ordered by time.
struct Trajectory {
  std::vector<TrajPoint> points;

  int size() const { return static_cast<int>(points.size()); }
  bool empty() const { return points.empty(); }
  const TrajPoint& operator[](int i) const { return points[i]; }

  /// Duration between the first and last sample, seconds.
  double DurationSeconds() const {
    return points.empty() ? 0.0 : points.back().t - points.front().t;
  }

  /// Sum of straight-line hops between consecutive samples, meters.
  double PathLength() const;

  /// Mean time gap between consecutive samples, seconds (0 if < 2 points).
  double MeanSamplingIntervalSeconds() const;

  /// Largest time gap between consecutive samples, seconds (0 if < 2 points).
  double MaxSamplingIntervalSeconds() const;

  /// Mean straight-line hop between consecutive samples, meters.
  double MeanSamplingDistanceMeters() const;

  /// Median straight-line hop between consecutive samples, meters.
  double MedianSamplingDistanceMeters() const;

  /// Raw positions of all samples, in order.
  std::vector<geo::Point> Positions() const;
};

/// A cellular trajectory paired with its ground-truth traveled path; the unit
/// of training and evaluation data. `gps` carries the co-recorded GPS samples
/// used by dataset statistics (the ground-truth path is derived from them in
/// the paper's pipeline; our simulator records the driven path directly).
struct MatchedTrajectory {
  Trajectory cellular;
  Trajectory gps;
  std::vector<network::SegmentId> truth_path;
};

/// The user's (approximate) true position at time `t`, taken from the
/// co-recorded GPS channel (nearest sample in time). Training-time only: the
/// paper's ground truth comes from the same co-recorded GPS.
geo::Point TruePositionAt(const MatchedTrajectory& mt, double t);

/// The traveled road at time `t`: the truth-path segment closest to the true
/// position. This is the label generator for the learned observation
/// probability and the seq2seq baselines — unlike a closest-point heuristic
/// it stays correct for points with extreme positioning error.
network::SegmentId TruthSegmentAtTime(const MatchedTrajectory& mt,
                                      const network::RoadNetwork& net, double t);

}  // namespace lhmm::traj

#endif  // LHMM_TRAJ_TRAJECTORY_H_
