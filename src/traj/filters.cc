#include "traj/filters.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::traj {

Trajectory SpeedFilter(const Trajectory& in, const FilterConfig& config) {
  Trajectory out;
  for (const TrajPoint& p : in.points) {
    if (out.points.empty()) {
      out.points.push_back(p);
      continue;
    }
    const TrajPoint& last = out.points.back();
    const double dt = p.t - last.t;
    const double dd = geo::Distance(p.pos, last.pos);
    if (dt <= 0.0) continue;  // Duplicate or out-of-order timestamp.
    if (dd / dt > config.max_speed) continue;
    out.points.push_back(p);
  }
  return out;
}

Trajectory AlphaTrimmedMeanFilter(const Trajectory& in, const FilterConfig& config) {
  const int n = in.size();
  Trajectory out = in;
  if (n == 0 || config.trim_window <= 0) return out;
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - config.trim_window);
    const int hi = std::min(n - 1, i + config.trim_window);
    std::vector<double> xs;
    std::vector<double> ys;
    for (int j = lo; j <= hi; ++j) {
      xs.push_back(in.points[j].pos.x);
      ys.push_back(in.points[j].pos.y);
    }
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    int trim = config.trim_alpha;
    // Keep at least one coordinate after trimming both sides.
    while (static_cast<int>(xs.size()) - 2 * trim < 1) --trim;
    double sx = 0.0;
    double sy = 0.0;
    const int kept = static_cast<int>(xs.size()) - 2 * trim;
    for (int j = trim; j < static_cast<int>(xs.size()) - trim; ++j) {
      sx += xs[j];
      sy += ys[j];
    }
    out.points[i].pos = {sx / kept, sy / kept};
  }
  return out;
}

Trajectory DirectionFilter(const Trajectory& in, const FilterConfig& config) {
  if (in.size() < 3) return in;
  Trajectory out;
  out.points.push_back(in.points.front());
  for (int i = 1; i + 1 < in.size(); ++i) {
    const geo::Point& prev = out.points.back().pos;
    const geo::Point& cur = in.points[i].pos;
    const geo::Point& next = in.points[i + 1].pos;
    const double hop_in = geo::Distance(prev, cur);
    const double hop_out = geo::Distance(cur, next);
    if (hop_in >= config.min_hop_for_direction &&
        hop_out >= config.min_hop_for_direction) {
      const double turn =
          geo::AngleDiff(geo::Bearing(prev, cur), geo::Bearing(cur, next));
      // A ping-pong outlier jumps far away and straight back; the direct
      // prev->next hop stays short relative to the detour.
      const double direct = geo::Distance(prev, next);
      if (turn > config.max_turn && direct < 0.5 * (hop_in + hop_out)) {
        continue;  // Drop the outlier.
      }
    }
    out.points.push_back(in.points[i]);
  }
  out.points.push_back(in.points.back());
  return out;
}

FilterConfig NoopFilterConfig() {
  FilterConfig cfg;
  cfg.max_speed = 1e18;
  cfg.trim_window = 0;
  cfg.max_turn = 10.0;  // > pi: the direction filter never fires.
  return cfg;
}

Trajectory PreprocessCellular(const Trajectory& in, const FilterConfig& config) {
  Trajectory t = SpeedFilter(in, config);
  t = AlphaTrimmedMeanFilter(t, config);
  t = DirectionFilter(t, config);
  return t;
}

Trajectory DeduplicateTowers(const Trajectory& in) {
  Trajectory out;
  for (const TrajPoint& p : in.points) {
    if (!out.points.empty() && p.tower != kInvalidTower &&
        p.tower == out.points.back().tower) {
      continue;
    }
    out.points.push_back(p);
  }
  return out;
}

Trajectory Resample(const Trajectory& in, double rate_per_minute) {
  CHECK_GT(rate_per_minute, 0.0);
  const double min_gap = 60.0 / rate_per_minute;
  Trajectory out;
  for (const TrajPoint& p : in.points) {
    if (out.points.empty() || p.t - out.points.back().t >= min_gap - 1e-9) {
      out.points.push_back(p);
    }
  }
  return out;
}

}  // namespace lhmm::traj
