#include "traj/simplify.h"

#include <vector>

#include "core/logging.h"
#include "geo/segment.h"

namespace lhmm::traj {

namespace {

/// Marks kept indices of points[lo..hi] (inclusive) recursively.
void DouglasPeucker(const std::vector<TrajPoint>& points, int lo, int hi,
                    double epsilon, std::vector<char>* keep) {
  if (hi - lo < 2) return;
  double worst = -1.0;
  int split = -1;
  for (int i = lo + 1; i < hi; ++i) {
    const double d =
        geo::DistanceToSegment(points[i].pos, points[lo].pos, points[hi].pos);
    if (d > worst) {
      worst = d;
      split = i;
    }
  }
  if (worst <= epsilon) return;  // Everything inside tolerance: drop interior.
  (*keep)[split] = 1;
  DouglasPeucker(points, lo, split, epsilon, keep);
  DouglasPeucker(points, split, hi, epsilon, keep);
}

}  // namespace

Trajectory Simplify(const Trajectory& in, double epsilon) {
  CHECK_GE(epsilon, 0.0);
  if (in.size() <= 2) return in;
  std::vector<char> keep(in.size(), 0);
  keep.front() = 1;
  keep.back() = 1;
  DouglasPeucker(in.points, 0, in.size() - 1, epsilon, &keep);
  Trajectory out;
  for (int i = 0; i < in.size(); ++i) {
    if (keep[i]) out.points.push_back(in.points[i]);
  }
  return out;
}

Trajectory ThinByDistance(const Trajectory& in, double min_gap_m) {
  CHECK_GE(min_gap_m, 0.0);
  Trajectory out;
  for (const TrajPoint& p : in.points) {
    if (out.points.empty() ||
        geo::Distance(p.pos, out.points.back().pos) >= min_gap_m) {
      out.points.push_back(p);
    }
  }
  if (!in.points.empty() &&
      !(out.points.back().t == in.points.back().t)) {
    out.points.push_back(in.points.back());
  }
  return out;
}

}  // namespace lhmm::traj
