#include "traj/trajectory.h"

#include <algorithm>

namespace lhmm::traj {

double Trajectory::PathLength() const {
  double total = 0.0;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    total += geo::Distance(points[i].pos, points[i + 1].pos);
  }
  return total;
}

double Trajectory::MeanSamplingIntervalSeconds() const {
  if (points.size() < 2) return 0.0;
  return DurationSeconds() / static_cast<double>(points.size() - 1);
}

double Trajectory::MaxSamplingIntervalSeconds() const {
  double max_gap = 0.0;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    max_gap = std::max(max_gap, points[i + 1].t - points[i].t);
  }
  return max_gap;
}

double Trajectory::MeanSamplingDistanceMeters() const {
  if (points.size() < 2) return 0.0;
  return PathLength() / static_cast<double>(points.size() - 1);
}

double Trajectory::MedianSamplingDistanceMeters() const {
  if (points.size() < 2) return 0.0;
  std::vector<double> hops;
  hops.reserve(points.size() - 1);
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    hops.push_back(geo::Distance(points[i].pos, points[i + 1].pos));
  }
  std::nth_element(hops.begin(), hops.begin() + hops.size() / 2, hops.end());
  return hops[hops.size() / 2];
}

geo::Point TruePositionAt(const MatchedTrajectory& mt, double t) {
  const auto& gps = mt.gps.points;
  if (gps.empty()) return {};
  const auto cmp = [](const TrajPoint& p, double value) { return p.t < value; };
  const auto it = std::lower_bound(gps.begin(), gps.end(), t, cmp);
  if (it == gps.begin()) return it->pos;
  if (it == gps.end()) return gps.back().pos;
  const auto prev = it - 1;
  return (t - prev->t) < (it->t - t) ? prev->pos : it->pos;
}

network::SegmentId TruthSegmentAtTime(const MatchedTrajectory& mt,
                                      const network::RoadNetwork& net, double t) {
  if (mt.truth_path.empty()) return network::kInvalidSegment;
  const geo::Point pos = TruePositionAt(mt, t);
  network::SegmentId best = mt.truth_path.front();
  double best_d = 1e18;
  for (network::SegmentId sid : mt.truth_path) {
    const double d = net.segment(sid).geometry.Project(pos).dist;
    if (d < best_d) {
      best_d = d;
      best = sid;
    }
  }
  return best;
}

std::vector<geo::Point> Trajectory::Positions() const {
  std::vector<geo::Point> out;
  out.reserve(points.size());
  for (const TrajPoint& p : points) out.push_back(p.pos);
  return out;
}

}  // namespace lhmm::traj
