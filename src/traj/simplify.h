#ifndef LHMM_TRAJ_SIMPLIFY_H_
#define LHMM_TRAJ_SIMPLIFY_H_

#include "traj/trajectory.h"

namespace lhmm::traj {

/// Douglas-Peucker trajectory simplification: keeps the subset of samples
/// whose removal would displace the polyline by more than `epsilon` meters.
/// Timestamps and tower ids of the kept samples are preserved. Useful for
/// storage/transmission of matched GPS channels and for the trajectory
/// compression workflows the paper cites as applications.
Trajectory Simplify(const Trajectory& in, double epsilon);

/// Length-based uniform thinning: keeps samples so consecutive kept samples
/// are at least `min_gap_m` apart (the spatial analogue of Resample()).
Trajectory ThinByDistance(const Trajectory& in, double min_gap_m);

}  // namespace lhmm::traj

#endif  // LHMM_TRAJ_SIMPLIFY_H_
